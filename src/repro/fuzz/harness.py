"""The fuzz campaign driver: seeds, mutation loop, reporting, replay.

A campaign is a pure function of ``(seed, budget)``: seed streams are
deterministic tiny encodes, each case derives its own generator from
``(seed, case_index)``, and the report renders byte-stably -- so a CI
smoke job and a developer shell see the exact same campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codec.encoder import encode
from repro.codec.presets import preset
from repro.fuzz import corpus as corpus_io
from repro.fuzz.minimize import ddmin
from repro.fuzz.mutators import MUTATORS, mutate
from repro.fuzz.oracle import DEFAULT_MAX_PIXELS, run_oracle
from repro.video.frame import Frame
from repro.video.video import Video

__all__ = ["FuzzFinding", "FuzzReport", "run_fuzz", "replay_corpus", "seed_streams"]

#: Seed for the synthetic content of the seed streams (fixed: the seed
#: streams are part of the campaign definition, not of its randomness).
_CONTENT_SEED = 3804

_OUTCOMES = ("ok", "concealed", "rejected", "violation")


@dataclass
class FuzzFinding:
    """One oracle violation, with enough context to reproduce it."""

    case: int
    mutator: str
    seed_stream: str
    detail: str
    data: bytes
    minimized: Optional[bytes] = None


@dataclass
class FuzzReport:
    """Aggregate outcome of a campaign (or a corpus replay)."""

    seed: int
    budget: int
    outcomes: Dict[str, int] = field(default_factory=dict)
    by_mutator: Dict[str, int] = field(default_factory=dict)
    violations: List[FuzzFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_text(self) -> str:
        lines = [f"fuzz campaign: seed={self.seed} budget={self.budget}"]
        lines.append(
            "  outcomes: "
            + " ".join(f"{k}={self.outcomes.get(k, 0)}" for k in _OUTCOMES)
        )
        if self.by_mutator:
            lines.append(
                "  cases by mutator: "
                + " ".join(
                    f"{name}={self.by_mutator[name]}"
                    for name in sorted(self.by_mutator)
                )
            )
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            for v in self.violations:
                size = len(v.minimized) if v.minimized is not None else len(v.data)
                lines.append(
                    f"    case {v.case} [{v.mutator} on {v.seed_stream}, "
                    f"{size} bytes]: {v.detail}"
                )
        else:
            lines.append("  no oracle violations")
        return "\n".join(lines) + "\n"


def _tiny_video(width: int, height: int, n_frames: int) -> Video:
    """Deterministic synthetic clip: noise base drifting sideways."""
    rng = np.random.default_rng(_CONTENT_SEED)
    base_y = rng.integers(0, 256, size=(height, width), dtype=np.uint8)
    base_u = rng.integers(0, 256, size=(height // 2, width // 2), dtype=np.uint8)
    base_v = rng.integers(0, 256, size=(height // 2, width // 2), dtype=np.uint8)
    frames = []
    for i in range(n_frames):
        frames.append(
            Frame.from_planes(
                np.roll(base_y, i, axis=1),
                np.roll(base_u, i, axis=1),
                np.roll(base_v, i, axis=1),
            )
        )
    return Video(frames, fps=24.0, name="fuzz-seed")


def seed_streams() -> List[Tuple[str, bytes]]:
    """The campaign's clean inputs: tiny encodes spanning both entropy
    coders and both container versions."""
    clip = _tiny_video(32, 16, 3)
    configs = [
        ("cavlc-v2", preset("ultrafast")),
        ("cabac-v2", preset("slow").derived(search_range=4, me_iterations=1)),
        ("cavlc-v1", preset("ultrafast").derived(container_version=1)),
    ]
    return [
        (label, encode(clip, cfg, crf=30).bitstream) for label, cfg in configs
    ]


def run_fuzz(
    seed: int = 0,
    budget: int = 1000,
    max_pixels: int = DEFAULT_MAX_PIXELS,
    corpus_dir: "Optional[Path | str]" = None,
    minimize: bool = False,
    check_strict: bool = True,
) -> FuzzReport:
    """Run a fuzz campaign of ``budget`` mutated-decode cases."""
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    seeds = seed_streams()
    names = sorted(MUTATORS)
    report = FuzzReport(
        seed=seed,
        budget=budget,
        outcomes={k: 0 for k in _OUTCOMES},
        by_mutator={n: 0 for n in names},
    )
    for case in range(budget):
        rng = np.random.default_rng((seed, case))
        stream_name, clean = seeds[int(rng.integers(0, len(seeds)))]
        name = names[int(rng.integers(0, len(names)))]
        data = mutate(name, clean, rng)
        verdict = run_oracle(data, max_pixels=max_pixels, check_strict=check_strict)
        report.outcomes[verdict.outcome] += 1
        report.by_mutator[name] += 1
        if not verdict.is_violation:
            continue
        finding = FuzzFinding(
            case=case,
            mutator=name,
            seed_stream=stream_name,
            detail=verdict.detail,
            data=data,
        )
        if minimize:
            finding.minimized = ddmin(
                data,
                lambda candidate: run_oracle(
                    candidate, max_pixels=max_pixels, check_strict=check_strict
                ).is_violation,
            )
        if corpus_dir is not None:
            corpus_io.save_case(
                corpus_dir,
                finding.minimized if finding.minimized is not None else data,
                {
                    "case": case,
                    "detail": verdict.detail,
                    "mutator": name,
                    "seed": seed,
                    "seed_stream": stream_name,
                },
            )
        report.violations.append(finding)
    return report


def replay_corpus(
    directory: "Path | str",
    max_pixels: int = DEFAULT_MAX_PIXELS,
    check_strict: bool = True,
) -> FuzzReport:
    """Re-run the oracle over every saved reproducer in ``directory``."""
    cases = corpus_io.load_corpus(directory)
    report = FuzzReport(
        seed=0,
        budget=len(cases),
        outcomes={k: 0 for k in _OUTCOMES},
    )
    for index, (path, data) in enumerate(cases):
        verdict = run_oracle(data, max_pixels=max_pixels, check_strict=check_strict)
        report.outcomes[verdict.outcome] += 1
        if verdict.is_violation:
            report.violations.append(
                FuzzFinding(
                    case=index,
                    mutator="corpus",
                    seed_stream=path.name,
                    detail=verdict.detail,
                    data=data,
                )
            )
    return report
