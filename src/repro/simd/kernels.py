"""The kernel catalog: cost and vectorizability of every codec kernel.

Each :class:`KernelSpec` describes one kernel the instrumented codec
counts (see :data:`repro.codec.instrumentation.KERNELS`):

* ``ops_per_unit`` -- scalar operations per counted unit of work (one SAD
  evaluation, one 8x8 transform, one entropy symbol, ...), estimated from
  the arithmetic the kernel performs.
* ``vector_fraction`` -- the share of those operations that data-parallel
  hardware can execute in lockstep.  Decision logic, carries, and bit
  twiddling stay scalar -- this is the Amdahl term the paper measures at
  ~60% scalar overall (Figure 7).
* ``max_lanes`` -- the widest useful vector for the kernel.  Most pixel
  kernels work on 16-pixel macroblock rows, so they cannot exploit
  32-lane AVX2 ("the width of macroblocks [is] smaller than the AVX2
  vector length", Section 5.2).
* ``domain`` -- integer pixel math or float transform math (different ISA
  widths, see :mod:`repro.simd.isa`).
* ``min_isa`` -- the generation whose instructions the vectorized
  implementation first required (e.g. quantization needs SSE4's packed
  multiply).

``CALIBRATION_OPS_SCALE`` maps our codec's work onto the paper's reference
encoder: a production encoder spends a documented multiple of our codec's
arithmetic on tools we do not implement (multiple partition sizes and
reference frames, lookahead, trellis).  The constant shifts absolute
modeled speeds into the regime of the paper's Figure 2 without touching
any ratio between presets, backends, or videos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.simd.isa import IsaLevel, float_lanes, int_lanes

__all__ = [
    "KernelSpec",
    "KERNEL_SPECS",
    "CALIBRATION_OPS_SCALE",
    "cycles_per_unit",
    "attributed_isa",
    "transform_scale",
]

#: Unimplemented-tool multiplier (see module docstring).
CALIBRATION_OPS_SCALE = 10.0


@dataclass(frozen=True)
class KernelSpec:
    """Cost/vectorizability description of one codec kernel."""

    name: str
    ops_per_unit: float
    vector_fraction: float
    max_lanes: int
    domain: str = "int"  # "int" or "float"
    min_isa: IsaLevel = IsaLevel.SSE2

    def __post_init__(self) -> None:
        if self.ops_per_unit <= 0:
            raise ValueError(f"{self.name}: ops_per_unit must be positive")
        if not 0.0 <= self.vector_fraction <= 1.0:
            raise ValueError(f"{self.name}: vector_fraction must be in [0, 1]")
        if self.max_lanes < 1:
            raise ValueError(f"{self.name}: max_lanes must be >= 1")
        if self.domain not in ("int", "float"):
            raise ValueError(f"{self.name}: domain must be 'int' or 'float'")

    def lanes_at(self, isa: IsaLevel) -> int:
        """Usable lanes when ISAs up to ``isa`` are enabled."""
        if isa < self.min_isa:
            return 1
        hw = int_lanes(isa) if self.domain == "int" else float_lanes(isa)
        return max(1, min(self.max_lanes, hw))


#: One spec per instrumented kernel.  Units follow the counter semantics in
#: the encoder: sad = one 16x16 SAD, dct = one 8x8 transform block (16x16
#: blocks are rescaled via :func:`transform_scale`), entropy = one
#: symbol/bin, deblock = one filtered edge pixel, etc.
KERNEL_SPECS: Dict[str, KernelSpec] = {
    "frame_setup": KernelSpec("frame_setup", 9_000, 0.50, 16),
    "sad": KernelSpec("sad", 512, 0.95, 32, "int", IsaLevel.SSE),
    "interp_halfpel": KernelSpec("interp_halfpel", 768, 0.90, 16, "int", IsaLevel.SSE2),
    "mc_blocks": KernelSpec("mc_blocks", 1024, 0.92, 32, "int", IsaLevel.SSE2),
    "intra_pred": KernelSpec("intra_pred", 96, 0.50, 8, "int", IsaLevel.SSE),
    "mode_decision": KernelSpec("mode_decision", 150, 0.0, 1),
    "dct": KernelSpec("dct", 1024, 0.90, 8, "float", IsaLevel.SSE2),
    "quant": KernelSpec("quant", 192, 0.90, 16, "int", IsaLevel.SSE4),
    "rdoq": KernelSpec("rdoq", 420, 0.60, 16, "int", IsaLevel.SSE4),
    "idct": KernelSpec("idct", 1024, 0.90, 8, "float", IsaLevel.SSE2),
    "dequant": KernelSpec("dequant", 160, 0.90, 16, "int", IsaLevel.SSE3),
    "recon": KernelSpec("recon", 640, 0.95, 16, "int", IsaLevel.SSE2),
    "entropy_sym": KernelSpec("entropy_sym", 45, 0.0, 1),
    "entropy_bin": KernelSpec("entropy_bin", 14, 0.0, 1),
    "deblock_edge": KernelSpec("deblock_edge", 12, 0.80, 16, "int", IsaLevel.SSE3),
    "ratecontrol": KernelSpec("ratecontrol", 2_500, 0.0, 1),
    "bitstream_io": KernelSpec("bitstream_io", 4, 0.50, 16, "int", IsaLevel.SSE2),
    "me_blocks": KernelSpec("me_blocks", 200, 0.0, 1),
}

#: Kernels whose unit cost scales with the residual transform size.
_TRANSFORM_KERNELS_CUBIC = ("dct", "idct")
_TRANSFORM_KERNELS_SQUARE = ("quant", "dequant", "rdoq")


def transform_scale(kernel: str, transform_size: int) -> float:
    """Unit-cost multiplier for large-transform configurations.

    The separable DCT is O(S^3); element-wise quantization is O(S^2).
    Specs are written for S = 8, so a 16x16 transform costs 8x per block
    for the DCT and 4x for quantization.
    """
    ratio = transform_size / 8.0
    if kernel in _TRANSFORM_KERNELS_CUBIC:
        return ratio**3
    if kernel in _TRANSFORM_KERNELS_SQUARE:
        return ratio**2
    return 1.0


def cycles_per_unit(
    spec: KernelSpec, isa: IsaLevel, transform_size: int = 8
) -> float:
    """Modeled cycles for one unit of this kernel at an ISA level.

    The vectorizable fraction is divided across the usable lanes; the
    scalar remainder runs at one op per cycle.  Includes the calibration
    scale (see module docstring).
    """
    lanes = spec.lanes_at(isa)
    ops = spec.ops_per_unit * transform_scale(spec.name, transform_size)
    ops *= CALIBRATION_OPS_SCALE
    return ops * ((1.0 - spec.vector_fraction) + spec.vector_fraction / lanes)


def attributed_isa(spec: KernelSpec, enabled: IsaLevel) -> IsaLevel:
    """Which ISA generation the kernel's vector code actually uses.

    The earliest generation that already supplies all the lanes the kernel
    can exploit: enabling AVX2 does not move a 16-lane kernel off its
    SSE2-class instructions, which is exactly why AVX2 "only partially
    replaces AVX" in the paper's breakdown.
    """
    if spec.vector_fraction == 0.0 or enabled < spec.min_isa:
        return IsaLevel.SCALAR
    usable = spec.lanes_at(enabled)
    for level in IsaLevel:
        if level < spec.min_isa:
            continue
        if spec.lanes_at(level) >= usable and level <= enabled:
            return level
    return enabled
