"""SIMD/ISA cycle attribution and the deterministic speed model.

The paper's Section 5.2 analyzes how much of transcoding is vectorizable,
which ISA generation each kernel actually exploits, and what Amdahl's Law
says about wider vectors.  This package reproduces that analysis from the
encoder's kernel-work counters:

* :mod:`repro.simd.isa` -- ISA generations and their vector widths.
* :mod:`repro.simd.kernels` -- the kernel catalog: operations per unit of
  work, vectorizable fraction, exploitable lanes.
* :mod:`repro.simd.analysis` -- cycle accounting: modeled time (the
  benchmark's deterministic speed metric), scalar/vector fractions
  (Figure 7), per-ISA breakdowns (Figure 8), Amdahl projections.

Wall-clock time of a pure-Python encoder measures the interpreter, not the
algorithm; the cycle model measures the *work the encoder actually did*,
which is the paper-relevant quantity (see DESIGN.md).
"""

from repro.simd.analysis import (
    amdahl_speedup_bound,
    cycle_breakdown,
    isa_breakdown,
    modeled_seconds,
    scalar_fraction,
    vector_fraction_by_isa,
)
from repro.simd.isa import ISA_LADDER, IsaLevel
from repro.simd.kernels import KERNEL_SPECS, KernelSpec, cycles_per_unit

__all__ = [
    "ISA_LADDER",
    "IsaLevel",
    "KERNEL_SPECS",
    "KernelSpec",
    "amdahl_speedup_bound",
    "cycle_breakdown",
    "cycles_per_unit",
    "isa_breakdown",
    "modeled_seconds",
    "scalar_fraction",
    "vector_fraction_by_isa",
]
