"""x86 SIMD generations and their usable vector widths.

Widths are the *effective parallel lanes* for the two data domains video
kernels live in: 8/16-bit integer pixel arithmetic and 32-bit float
transform arithmetic.  Note the historical quirks the paper's Figure 8
turns on: SSE only widened floats (integers stayed at MMX's 64 bits),
AVX only widened floats again (integer AVX2 came a generation later), so
integer kernels saw their last width doubling with SSE2 until AVX2.
"""

from __future__ import annotations

import enum

__all__ = ["IsaLevel", "ISA_LADDER", "int_lanes", "float_lanes"]


class IsaLevel(enum.IntEnum):
    """SIMD instruction-set generations, in introduction order."""

    SCALAR = 0
    SSE = 1
    SSE2 = 2
    SSE3 = 3
    SSE4 = 4
    AVX = 5
    AVX2 = 6


#: The ladder in introduction order (what Figure 8 sweeps).
ISA_LADDER = tuple(IsaLevel)

_INT_LANES = {
    IsaLevel.SCALAR: 1,
    IsaLevel.SSE: 8,      # 64-bit MMX-heritage integer ops
    IsaLevel.SSE2: 16,    # 128-bit integer
    IsaLevel.SSE3: 16,
    IsaLevel.SSE4: 16,
    IsaLevel.AVX: 16,     # AVX1 did not widen integer ops
    IsaLevel.AVX2: 32,    # 256-bit integer
}

_FLOAT_LANES = {
    IsaLevel.SCALAR: 1,
    IsaLevel.SSE: 4,
    IsaLevel.SSE2: 4,
    IsaLevel.SSE3: 4,
    IsaLevel.SSE4: 4,
    IsaLevel.AVX: 8,
    IsaLevel.AVX2: 8,
}


def int_lanes(isa: IsaLevel) -> int:
    """Parallel 8-bit integer lanes available at this ISA level."""
    return _INT_LANES[isa]


def float_lanes(isa: IsaLevel) -> int:
    """Parallel 32-bit float lanes available at this ISA level."""
    return _FLOAT_LANES[isa]
