"""Cycle accounting over kernel counters: speed, fractions, breakdowns.

These functions turn a :class:`~repro.codec.instrumentation.Counters`
object (what an encode actually did) into the numbers the paper reports:

* :func:`modeled_seconds` -- the deterministic time metric behind every
  speed number in the benchmark;
* :func:`scalar_fraction` / :func:`vector_fraction_by_isa` -- Figure 7;
* :func:`isa_breakdown` -- Figure 8's stacked per-generation cycles;
* :func:`amdahl_speedup_bound` -- the "less than 10% from 2x wider SIMD"
  argument of Section 5.2.
"""

from __future__ import annotations

from typing import Dict

from repro.codec.instrumentation import Counters
from repro.simd.isa import ISA_LADDER, IsaLevel
from repro.simd.kernels import (
    KERNEL_SPECS,
    attributed_isa,
    cycles_per_unit,
    transform_scale,
    CALIBRATION_OPS_SCALE,
)

__all__ = [
    "cycle_breakdown",
    "modeled_seconds",
    "modeled_instructions",
    "scalar_fraction",
    "vector_fraction_by_isa",
    "isa_breakdown",
    "amdahl_speedup_bound",
]

#: The paper's reference machine: Intel Core i7-6700K @ 4.00 GHz.
REFERENCE_FREQ_HZ = 4.0e9


def cycle_breakdown(
    counters: Counters,
    isa: IsaLevel = IsaLevel.AVX2,
    transform_size: int = 8,
) -> Dict[str, float]:
    """Modeled cycles per kernel for a finished encode."""
    out: Dict[str, float] = {}
    for kernel, units in counters.as_dict().items():
        spec = KERNEL_SPECS[kernel]
        out[kernel] = units * cycles_per_unit(spec, isa, transform_size)
    return out


def modeled_seconds(
    counters: Counters,
    isa: IsaLevel = IsaLevel.AVX2,
    transform_size: int = 8,
    freq_hz: float = REFERENCE_FREQ_HZ,
) -> float:
    """Modeled CPU seconds of an encode on the reference machine."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return sum(cycle_breakdown(counters, isa, transform_size).values()) / freq_hz


def modeled_instructions(counters: Counters, transform_size: int = 8) -> float:
    """Modeled dynamic instruction count (retired-instruction equivalent).

    Vector instructions retire work for many lanes at once, so the retired
    stream is approximated by the AVX2 cycle count (ops/lanes for vector
    code plus scalar ops).  The calibration scale is divided out: MPKI
    metrics normalize microarchitectural events against the instruction
    stream of the *modeled* codec, whose events the tracer records --
    keeping numerator and denominator in the same universe (Figure 5).
    """
    total = sum(
        cycle_breakdown(counters, IsaLevel.AVX2, transform_size).values()
    )
    return total / CALIBRATION_OPS_SCALE


def scalar_fraction(
    counters: Counters,
    isa: IsaLevel = IsaLevel.AVX2,
    transform_size: int = 8,
) -> float:
    """Fraction of modeled cycles spent in scalar (non-vector) code."""
    total = 0.0
    scalar = 0.0
    for kernel, units in counters.as_dict().items():
        spec = KERNEL_SPECS[kernel]
        cycles = units * cycles_per_unit(spec, isa, transform_size)
        total += cycles
        ops = (
            units * spec.ops_per_unit
            * transform_scale(kernel, transform_size)
            * CALIBRATION_OPS_SCALE
        )
        scalar += ops * (1.0 - spec.vector_fraction)
        if isa < spec.min_isa:
            # Vector part runs scalar too when its ISA is unavailable.
            scalar += ops * spec.vector_fraction
    if total == 0.0:
        raise ValueError("empty counters: nothing was encoded")
    return scalar / total


def vector_fraction_by_isa(
    counters: Counters,
    enabled: IsaLevel = IsaLevel.AVX2,
    transform_size: int = 8,
) -> Dict[IsaLevel, float]:
    """Fraction of modeled cycles attributed to each ISA generation.

    The sum over all generations (including SCALAR) is 1.  This is the
    quantity plotted against entropy in Figure 7 (scalar and AVX2 series)
    and stacked in Figure 8.
    """
    cycles_by_isa: Dict[IsaLevel, float] = {level: 0.0 for level in ISA_LADDER}
    total = 0.0
    for kernel, units in counters.as_dict().items():
        spec = KERNEL_SPECS[kernel]
        cycles = units * cycles_per_unit(spec, enabled, transform_size)
        total += cycles
        ops = (
            units * spec.ops_per_unit
            * transform_scale(kernel, transform_size)
            * CALIBRATION_OPS_SCALE
        )
        scalar_cycles = ops * (1.0 - spec.vector_fraction)
        if enabled < spec.min_isa:
            scalar_cycles = cycles
            vector_cycles = 0.0
        else:
            vector_cycles = cycles - scalar_cycles
        cycles_by_isa[IsaLevel.SCALAR] += scalar_cycles
        if vector_cycles > 0.0:
            cycles_by_isa[attributed_isa(spec, enabled)] += vector_cycles
    if total == 0.0:
        raise ValueError("empty counters: nothing was encoded")
    return {level: c / total for level, c in cycles_by_isa.items()}


def isa_breakdown(
    counters: Counters, transform_size: int = 8
) -> Dict[IsaLevel, Dict[IsaLevel, float]]:
    """Figure 8: for each *enabled* ISA level, total cycles by *used* level.

    Returns ``{enabled: {used: cycles}}``.  Cycles are absolute, so rows
    can be normalized to the AVX2 row the way the paper normalizes its
    bars.
    """
    out: Dict[IsaLevel, Dict[IsaLevel, float]] = {}
    for enabled in ISA_LADDER:
        row: Dict[IsaLevel, float] = {level: 0.0 for level in ISA_LADDER}
        for kernel, units in counters.as_dict().items():
            spec = KERNEL_SPECS[kernel]
            cycles = units * cycles_per_unit(spec, enabled, transform_size)
            ops = (
                units * spec.ops_per_unit
                * transform_scale(kernel, transform_size)
                * CALIBRATION_OPS_SCALE
            )
            scalar_cycles = ops * (1.0 - spec.vector_fraction)
            if enabled < spec.min_isa:
                row[IsaLevel.SCALAR] += cycles
            else:
                row[IsaLevel.SCALAR] += scalar_cycles
                row[attributed_isa(spec, enabled)] += cycles - scalar_cycles
        out[enabled] = row
    return out


def amdahl_speedup_bound(
    counters: Counters,
    target: IsaLevel = IsaLevel.AVX2,
    widen_factor: float = 2.0,
    transform_size: int = 8,
) -> float:
    """Upper bound on speedup if ``target``-attributed code ran
    ``widen_factor``x faster (Section 5.2's hypothetical 512-bit SIMD).

    Amdahl's Law over the attributed cycle fractions: only the cycles that
    actually execute ``target`` instructions can benefit.
    """
    if widen_factor <= 0:
        raise ValueError(f"widen factor must be positive, got {widen_factor}")
    fractions = vector_fraction_by_isa(counters, IsaLevel.AVX2, transform_size)
    f = fractions.get(target, 0.0)
    return 1.0 / ((1.0 - f) + f / widen_factor)
