"""Named seed constants: every magic RNG literal in the repo, documented.

The paper's methodology (Table 1 ratios against fixed references) only
works if every random draw is replayable, which in turn requires every
*root* seed to be a named, documented constant rather than a literal
scattered at a call site.  Derived per-task seeds are computed from these
roots (see :func:`repro.exec.runner.task_seed` and
:meth:`repro.robust.faults.FaultPlan.rng_for`); the VL001 determinism lint
rule enforces that no stream is ever constructed unseeded.

Changing any value here changes the synthetic corpus / selection and
therefore every downstream report; treat these like file-format version
numbers.
"""

from __future__ import annotations

__all__ = ["SUITE_SELECTION_SEED", "XIPH_DATASET_SEED"]

#: Default corpus-generation + k-means selection seed for
#: :func:`repro.core.benchmark.vbench_suite` and the CLI's ``--seed``.
#: 2017 after the Jan-Jun 2017 YouTube log window the paper selects from.
SUITE_SELECTION_SEED = 2017

#: Seed for the synthetic model of Derf's (xiph.org) collection in
#: :mod:`repro.corpus.datasets`: the 41 clip categories are sampled once,
#: deterministically, so Figure 4-style coverage comparisons are stable.
#: 41 after the collection's clip count.
XIPH_DATASET_SEED = 41
