"""Video categories: the paper's unit of corpus characterization.

A *category* is the set of videos sharing a (resolution, framerate,
entropy) triple, with resolution in integer Kpixels/frame, framerate in
integer frames/second, and entropy in bits/pixel/second at constant
quality, rounded to one decimal place (Section 4.1).

Categories also carry the feature-space transform the clustering uses:
log2-linearized resolution and entropy, everything normalized to [-1, 1].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["VideoCategory", "feature_matrix", "STANDARD_RESOLUTIONS"]

#: The standard upload resolution ladder (width, height).
STANDARD_RESOLUTIONS: Tuple[Tuple[int, int], ...] = (
    (176, 144),     # 144p
    (320, 240),     # 240p
    (640, 360),     # 360p
    (854, 480),     # 480p
    (1280, 720),    # 720p
    (1920, 1080),   # 1080p
    (2560, 1440),   # 1440p
    (3840, 2160),   # 2160p
)


@dataclass(frozen=True)
class VideoCategory:
    """One (resolution, framerate, entropy) corpus category.

    Attributes:
        width, height: Frame geometry in pixels.
        framerate: Frames per second (integer, per the paper's rounding).
        entropy: Bits/pixel/second at visually lossless constant quality,
            rounded to one decimal.
        weight: Total transcoding time attributed to this category in the
            (synthetic) logs; the k-means weighting term.
    """

    width: int
    height: int
    framerate: int
    entropy: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"bad geometry {self.width}x{self.height}")
        if self.framerate <= 0:
            raise ValueError(f"framerate must be positive, got {self.framerate}")
        if self.entropy <= 0:
            raise ValueError(f"entropy must be positive, got {self.entropy}")
        if self.weight < 0:
            raise ValueError(f"weight must be non-negative, got {self.weight}")

    @property
    def kpixels(self) -> int:
        """Resolution in Kpixels/frame, rounded (the paper's category key)."""
        return int(round(self.width * self.height / 1000.0))

    @property
    def pixel_rate(self) -> float:
        """Pixels per second of playback."""
        return float(self.width * self.height * self.framerate)

    def key(self) -> Tuple[int, int, float]:
        """The category identity triple (Kpixels, fps, entropy@0.1)."""
        return (self.kpixels, self.framerate, round(self.entropy, 1))

    def features(self) -> Tuple[float, float, float]:
        """Raw clustering features: (log2 Kpixels, fps, log2 entropy).

        The paper linearizes resolution and entropy with base-2 logs so
        that the clustering sees relative rather than absolute distances
        (1 vs 2 bits/px/s is a big difference; 20 vs 21 is not).
        """
        return (
            math.log2(max(self.kpixels, 1)),
            float(self.framerate),
            math.log2(self.entropy),
        )


def feature_matrix(categories: Sequence[VideoCategory]) -> np.ndarray:
    """Normalized feature matrix for clustering: each column in [-1, 1].

    Applies the paper's normalization after the log transforms.  Degenerate
    columns (all categories equal) normalize to zero.
    """
    if not categories:
        raise ValueError("need at least one category")
    raw = np.array([c.features() for c in categories], dtype=np.float64)
    lo = raw.min(axis=0)
    hi = raw.max(axis=0)
    span = hi - lo
    out = np.zeros_like(raw)
    for j in range(raw.shape[1]):
        if span[j] > 0:
            out[:, j] = 2.0 * (raw[:, j] - lo[j]) / span[j] - 1.0
    return out
