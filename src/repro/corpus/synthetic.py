"""The synthetic commercial corpus and its stand-in video renderer.

Replaces the paper's six months of YouTube transcoding logs with a
deterministic generative model whose joint (resolution, framerate,
entropy) distribution matches the published characterization:

* a standard resolution ladder plus odd and vertical variants (40+
  distinct resolutions, 480p-1080p heavy, 4K light);
* the top framerates (24/25/30 heavy; 48/50/60 for high-framerate
  content; low rates for slideshows);
* entropy as a mixture over content classes spanning four decades --
  slideshows below 0.1 bit/px/s up to high-motion sports above 10;
* category weight = total transcoding time ~ pixel rate x upload volume.

``video_for_category`` renders a reduced-scale stand-in clip for any
category: the content class is chosen by the category's entropy band, the
clip is synthesized at ``1/downscale`` linear scale, and the nominal
resolution is recorded on the video so resolution-dependent models (the
hardware pipeline, live realtime targets) see the category's true
geometry.  See DESIGN.md for why this preserves the paper's trends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.corpus.category import STANDARD_RESOLUTIONS, VideoCategory
from repro.video.synthesis import synthesize
from repro.video.video import Video

__all__ = ["RenderProfile", "PROFILES", "SyntheticCorpus", "video_for_category"]


@dataclass(frozen=True)
class RenderProfile:
    """How big the stand-in clips are.

    Attributes:
        name: Profile label.
        downscale: Linear scale divisor applied to the nominal resolution
            (uniform across the suite so relative resolutions survive).
        max_frames: Cap on clip length in frames (clips target ~1 second).
    """

    name: str
    downscale: int
    max_frames: int

    def __post_init__(self) -> None:
        if self.downscale < 1:
            raise ValueError(f"downscale must be >= 1, got {self.downscale}")
        if self.max_frames < 2:
            raise ValueError(f"max_frames must be >= 2, got {self.max_frames}")

    def render_geometry(self, width: int, height: int) -> Tuple[int, int]:
        """Stand-in (width, height): scaled, even, at least 32x32."""
        w = max(32, int(round(width / self.downscale / 2.0)) * 2)
        h = max(32, int(round(height / self.downscale / 2.0)) * 2)
        return w, h

    def render_frames(self, framerate: float) -> int:
        """Stand-in frame count: ~1 second, capped."""
        return max(6, min(self.max_frames, int(round(framerate))))


#: Built-in rendering profiles, from CI-fast to paper-faithful.
PROFILES: Dict[str, RenderProfile] = {
    "tiny": RenderProfile("tiny", downscale=18, max_frames=8),
    "fast": RenderProfile("fast", downscale=12, max_frames=10),
    "bench": RenderProfile("bench", downscale=8, max_frames=16),
    "full": RenderProfile("full", downscale=4, max_frames=30),
}

# Entropy bands (bit/px/s) -> content class.  Bands overlap the measured
# entropy each class actually produces; the selection pipeline re-measures.
_ENTROPY_BANDS: Tuple[Tuple[float, str], ...] = (
    (1.0, "slideshow"),
    (5.0, "screencast"),
    (12.0, "animation"),
    (25.0, "natural"),
    (48.0, "gaming"),
    (math.inf, "sports"),
)

#: Table 2-flavoured name pools per content class.
_NAME_POOL: Dict[str, Tuple[str, ...]] = {
    "slideshow": ("presentation", "slides", "lecture", "deck"),
    "screencast": ("desktop", "tutorial", "coding", "terminal"),
    "animation": ("bike", "funny", "cartoon", "toon"),
    "natural": ("girl", "house", "landscape", "chicken", "interview"),
    "gaming": ("game1", "game2", "game3", "speedrun"),
    "sports": ("cat", "holi", "cricket", "hall", "parade"),
}


def content_class_for_entropy(entropy: float) -> str:
    """The content class whose band contains this entropy."""
    if entropy <= 0:
        raise ValueError(f"entropy must be positive, got {entropy}")
    for upper, name in _ENTROPY_BANDS:
        if entropy < upper:
            return name
    raise AssertionError("unreachable: bands end at +inf")


def video_for_category(
    category: VideoCategory,
    profile: "RenderProfile | str" = "fast",
    seed: int = 0,
    name: Optional[str] = None,
) -> Video:
    """Render a stand-in clip representing ``category``.

    The clip is synthesized at reduced scale with content whose measured
    entropy lands in the category's band; its ``nominal_resolution`` is
    the category's true geometry.
    """
    if isinstance(profile, str):
        try:
            profile = PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown profile {profile!r}; expected one of {sorted(PROFILES)}"
            ) from None
    content = content_class_for_entropy(category.entropy)
    width, height = profile.render_geometry(category.width, category.height)
    frames = profile.render_frames(category.framerate)
    params = _content_params(content, category.entropy)
    if name is None:
        pool = _NAME_POOL[content]
        name = pool[seed % len(pool)]
    video = synthesize(
        content, width, height, frames, float(category.framerate),
        seed=seed, name=name, **params,
    )
    return video.with_nominal_resolution(category.width, category.height)


def _content_params(content: str, entropy: float) -> Dict[str, float]:
    """Scale generator knobs so measured entropy tracks the target."""
    if content == "natural":
        t = min(1.0, max(0.0, (entropy - 12.0) / 13.0))
        return {"detail": 0.4 + 0.5 * t, "noise": 0.4 + 1.0 * t, "pan": 0.5 + t}
    if content == "sports":
        t = min(1.0, max(0.0, (entropy - 48.0) / 50.0))
        return {"noise": 1.4 + 1.4 * t, "speed": 3.0 + 3.0 * t}
    if content == "gaming":
        t = min(1.0, max(0.0, (entropy - 25.0) / 23.0))
        return {"speed": 2.0 + 2.0 * t, "noise": 0.6 + 1.2 * t}
    if content == "screencast":
        t = min(1.0, max(0.0, (entropy - 1.0) / 4.0))
        return {"activity": 0.04 + 0.3 * t}
    if content == "animation":
        t = min(1.0, max(0.0, (entropy - 5.0) / 7.0))
        return {"speed": 0.4 + 1.2 * t, "n_shapes": int(3 + 5 * t)}
    return {}


class SyntheticCorpus:
    """A weighted category population standing in for the YouTube logs.

    Args:
        seed: Deterministic seed.
        n_uploads: Simulated uploads to draw; more uploads produce more
            distinct categories (the paper's logs yield ~3500 categories
            with significant weight; the default lands in that regime).
    """

    # Upload mix over the standard ladder (plus odd/vertical variants).
    _RES_WEIGHTS = (0.02, 0.05, 0.14, 0.30, 0.28, 0.17, 0.004, 0.006)
    _FPS_CHOICES = (6, 12, 15, 24, 25, 30, 48, 50, 60)
    _FPS_WEIGHTS = (0.02, 0.04, 0.06, 0.17, 0.12, 0.38, 0.04, 0.05, 0.12)
    # Entropy mixture: (log-mean, log-sigma, share) per content population.
    _ENTROPY_MIX = (
        (math.log(0.3), 0.6, 0.10),    # slideshows / stills
        (math.log(2.5), 0.45, 0.10),   # screen capture
        (math.log(8.0), 0.35, 0.18),   # animation
        (math.log(16.0), 0.30, 0.27),  # natural
        (math.log(34.0), 0.22, 0.20),  # gaming
        (math.log(62.0), 0.30, 0.15),  # sports / high motion
    )

    def __init__(self, seed: int = 2017, n_uploads: int = 60_000) -> None:
        if n_uploads <= 0:
            raise ValueError(f"need a positive upload count, got {n_uploads}")
        self.seed = seed
        rng = np.random.default_rng(seed)
        resolutions = self._resolution_pool(rng)
        res_probs = self._resolution_probs(resolutions)

        res_idx = rng.choice(len(resolutions), size=n_uploads, p=res_probs)
        fps = rng.choice(
            self._FPS_CHOICES, size=n_uploads,
            p=np.array(self._FPS_WEIGHTS) / sum(self._FPS_WEIGHTS),
        )
        entropy = self._sample_entropy(rng, n_uploads)

        # Duration of each upload (minutes), log-normal.
        minutes = np.exp(rng.normal(1.0, 0.9, size=n_uploads))
        weights: Dict[Tuple[int, int, int, float], float] = {}
        for i in range(n_uploads):
            w, h = resolutions[res_idx[i]]
            e = max(0.1, round(float(entropy[i]), 1))
            key = (w, h, int(fps[i]), e)
            # Transcode time ~ pixels x frames ~ pixel rate x duration.
            cost = w * h * fps[i] * minutes[i]
            weights[key] = weights.get(key, 0.0) + cost
        self.categories: List[VideoCategory] = [
            VideoCategory(w, h, f, e, weight=cost)
            for (w, h, f, e), cost in sorted(weights.items())
        ]

    def _resolution_pool(self, rng: np.random.Generator) -> List[Tuple[int, int]]:
        """The standard ladder plus vertical and odd variants (40+ total)."""
        pool = list(STANDARD_RESOLUTIONS)
        # Vertical (phone) uploads of the mid ladder.
        pool += [(h, w) for (w, h) in STANDARD_RESOLUTIONS[2:6]]
        # Odd encodes: anamorphic / cropped variants around the ladder.
        for w, h in STANDARD_RESOLUTIONS[2:]:
            for scale in (0.9, 1.05):
                pool.append(
                    (int(w * scale) // 2 * 2, int(h / scale) // 2 * 2)
                )
        # Legacy and container-specific formats.
        pool += [
            (426, 240), (256, 144), (480, 360), (640, 480), (960, 540),
            (1152, 648), (768, 432), (600, 480), (640, 352), (320, 180),
            (480, 272), (720, 576), (720, 480), (1440, 1080), (800, 450),
        ]
        seen = set()
        unique: List[Tuple[int, int]] = []
        for res in pool:
            if res not in seen:
                seen.add(res)
                unique.append(res)
        return unique

    def _resolution_probs(self, resolutions: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Upload probability per resolution: ladder-weighted, variants light."""
        ladder = {res: w for res, w in zip(STANDARD_RESOLUTIONS, self._RES_WEIGHTS)}
        probs = []
        for w, h in resolutions:
            if (w, h) in ladder:
                probs.append(ladder[(w, h)])
            else:
                # Variants get a share proportional to the nearest ladder rung.
                pixels = w * h
                nearest = min(
                    STANDARD_RESOLUTIONS,
                    key=lambda r: abs(r[0] * r[1] - pixels),
                )
                probs.append(0.08 * ladder[nearest])
        arr = np.array(probs)
        return arr / arr.sum()

    def _sample_entropy(self, rng: np.random.Generator, n: int) -> np.ndarray:
        shares = np.array([m[2] for m in self._ENTROPY_MIX])
        comp = rng.choice(len(self._ENTROPY_MIX), size=n, p=shares / shares.sum())
        mus = np.array([m[0] for m in self._ENTROPY_MIX])[comp]
        sigmas = np.array([m[1] for m in self._ENTROPY_MIX])[comp]
        return np.exp(rng.normal(mus, sigmas))

    # -- views ------------------------------------------------------------

    @property
    def total_weight(self) -> float:
        """Total transcoding time over all categories."""
        return float(sum(c.weight for c in self.categories))

    def top_categories(self, n: int) -> List[VideoCategory]:
        """The ``n`` heaviest categories."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return sorted(self.categories, key=lambda c: -c.weight)[:n]

    def significant_categories(self, min_share: float = 1e-5) -> List[VideoCategory]:
        """Categories above a minimum share of total transcode time."""
        floor = self.total_weight * min_share
        return [c for c in self.categories if c.weight >= floor]

    def __len__(self) -> int:
        return len(self.categories)
