"""Models of the public video datasets the paper compares against.

Figure 4 and Section 5.1 contrast vbench's coverage with four public
collections.  Each model lists the categories (resolution, framerate,
entropy) of that collection, matching the characterization in the paper:

* **netflix** -- 9 clips from a professional catalog: single resolution
  (1080p), uniformly high entropy (it was curated for visual analysis).
* **xiph** -- Derf's collection: 41 clips, 480p to 4K, entropy >= 1.
* **spec2006** -- the H.264 reference encoder's two low-resolution inputs.
* **spec2017** -- two segments of one HD animation (nearly identical
  entropy).
* **coverage** -- the internal YouTube coverage set: 11 log-uniform
  entropy samples over the top six resolutions and top eight framerate
  combinations (the black dots of Figures 4/5).

Stand-in clips for any of these categories come from
:func:`repro.corpus.synthetic.video_for_category`.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.constants import XIPH_DATASET_SEED
from repro.corpus.category import VideoCategory

__all__ = ["PUBLIC_DATASETS", "dataset_categories", "coverage_set"]


def _netflix() -> List[VideoCategory]:
    """Nine 1080p high-entropy clips (Li et al. 2016)."""
    entropies = (1.6, 2.2, 2.9, 3.8, 4.4, 5.1, 6.3, 7.5, 9.0)
    fps = (24, 24, 24, 30, 24, 30, 24, 30, 24)
    return [
        VideoCategory(1920, 1080, f, e)
        for e, f in zip(entropies, fps)
    ]


def _xiph() -> List[VideoCategory]:
    """Derf's collection: 41 clips, 480p-4K, entropy >= 1."""
    rng = np.random.default_rng(XIPH_DATASET_SEED)
    resolutions = [(854, 480)] * 6 + [(1280, 720)] * 12 + [(1920, 1080)] * 17 + [
        (3840, 2160)
    ] * 6
    categories = []
    for i, (w, h) in enumerate(resolutions):
        entropy = round(float(np.exp(rng.uniform(math.log(1.0), math.log(16.0)))), 1)
        fps = int(rng.choice([25, 30, 50, 60], p=[0.3, 0.4, 0.15, 0.15]))
        categories.append(VideoCategory(w, h, fps, max(1.0, entropy)))
    return categories


def _spec2006() -> List[VideoCategory]:
    """The H.264 reference encoder inputs: tiny resolutions."""
    return [
        VideoCategory(176, 144, 30, 3.1),   # foreman-like QCIF
        VideoCategory(640, 352, 25, 4.2),   # SSS sequence
    ]


def _spec2017() -> List[VideoCategory]:
    """Two segments of the same HD animation: near-identical entropy."""
    return [
        VideoCategory(1280, 720, 24, 2.3),
        VideoCategory(1280, 720, 24, 2.4),
    ]


#: Top resolutions/framerates covering >95% of uploads (Section 4.1).
_COVERAGE_RESOLUTIONS = (
    (320, 240), (640, 360), (854, 480), (1280, 720), (1920, 1080), (3840, 2160),
)
_COVERAGE_FRAMERATES = (12, 15, 24, 25, 30, 48, 50, 60)


def coverage_set(samples_per_combo: int = 11) -> List[VideoCategory]:
    """The internal coverage set: log-uniform entropy per (res, fps) combo.

    11 entropy samples from 0.02 to 25 bit/px/s for each of the top-6
    resolutions x top-8 framerates.  Weights are uniform: this set exists
    to expose trends, not to mirror upload volume.
    """
    if samples_per_combo < 2:
        raise ValueError(
            f"need at least 2 entropy samples, got {samples_per_combo}"
        )
    entropies = np.exp(
        np.linspace(math.log(0.02), math.log(25.0), samples_per_combo)
    )
    categories = []
    for width, height in _COVERAGE_RESOLUTIONS:
        for fps in _COVERAGE_FRAMERATES:
            for entropy in entropies:
                categories.append(
                    VideoCategory(width, height, fps, float(entropy))
                )
    return categories


PUBLIC_DATASETS: Dict[str, List[VideoCategory]] = {
    "netflix": _netflix(),
    "xiph": _xiph(),
    "spec2006": _spec2006(),
    "spec2017": _spec2017(),
    "coverage": coverage_set(),
}


def dataset_categories(name: str) -> List[VideoCategory]:
    """Categories of a named public dataset (copy; safe to mutate)."""
    try:
        return list(PUBLIC_DATASETS[name])
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(PUBLIC_DATASETS)}"
        ) from None
