"""The commercial corpus substrate: categories, weights, popularity.

The paper's selection pipeline (Section 4.1) starts from six months of
transcoding logs over a corpus of millions of videos.  Offline, this
package synthesizes a corpus with the same *structure*: ~3500 weighted
(resolution, framerate, entropy) categories whose marginals follow the
published characterization (40+ resolutions, 200+ entropy values spanning
four decades, power-law popularity with exponential cutoff), plus models
of the public datasets the paper compares coverage against (Netflix,
Xiph.org/Derf, SPEC 2006/2017).
"""

from repro.corpus.category import VideoCategory
from repro.corpus.datasets import PUBLIC_DATASETS, dataset_categories
from repro.corpus.kmeans import weighted_kmeans
from repro.corpus.popularity import PopularityModel
from repro.corpus.synthetic import SyntheticCorpus

__all__ = [
    "PUBLIC_DATASETS",
    "PopularityModel",
    "SyntheticCorpus",
    "VideoCategory",
    "dataset_categories",
    "weighted_kmeans",
]
