"""Video popularity: power law with exponential cutoff.

Section 2.5 (citing Cha et al.): "most of the watch time concentrates in a
few popular videos, while there is a long tail of rarely watched videos."
The standard fit is a Zipf-like power law with an exponential cutoff,

    views(rank) ~ rank^(-alpha) * exp(-rank / cutoff)

This model drives the sharing-service simulation's decision of which
videos earn a high-effort Popular re-transcode, and how egress costs
distribute over the corpus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["PopularityModel"]


@dataclass(frozen=True)
class PopularityModel:
    """Rank-based popularity distribution.

    Attributes:
        alpha: Power-law exponent (Cha et al. report ~0.8-1.1 for UGC).
        cutoff_rank: Exponential cutoff scale; beyond this rank interest
            decays faster than any power law.
        total_views: Total view volume to distribute.
    """

    alpha: float = 1.0
    cutoff_rank: float = 2.0e4
    total_views: float = 1.0e9

    def __post_init__(self) -> None:
        # Non-finite parameters would sail through the sign checks below
        # (inf > 0) and surface later as NaN view masses — i.e. NaN
        # arrival rates once the traffic layer samples this model.  Fail
        # at construction instead.
        for name in ("alpha", "cutoff_rank", "total_views"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ValueError(f"{name} must be finite, got {value}")
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.cutoff_rank <= 0:
            raise ValueError(f"cutoff must be positive, got {self.cutoff_rank}")
        if self.total_views <= 0:
            raise ValueError(f"total views must be positive, got {self.total_views}")

    def raw_mass(self, ranks: np.ndarray) -> np.ndarray:
        """Unnormalized view mass for 1-based ranks."""
        ranks = np.asarray(ranks, dtype=np.float64)
        if np.any(ranks < 1):
            raise ValueError("ranks are 1-based")
        return ranks ** (-self.alpha) * np.exp(-ranks / self.cutoff_rank)

    def views(self, n_videos: int) -> np.ndarray:
        """Expected views per video for a corpus of ``n_videos``, by rank."""
        if n_videos <= 0:
            raise ValueError(f"need a positive corpus size, got {n_videos}")
        mass = self.raw_mass(np.arange(1, n_videos + 1))
        return self.total_views * mass / mass.sum()

    def watch_share(self, n_videos: int, top: int) -> float:
        """Fraction of total views captured by the ``top`` most popular."""
        if not 0 < top <= n_videos:
            raise ValueError(f"top must be in (0, {n_videos}], got {top}")
        views = self.views(n_videos)
        return float(views[:top].sum() / views.sum())

    def sample_ranks(
        self, n_samples: int, n_videos: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw watch events (1-based video ranks) from the distribution."""
        if n_samples < 0:
            raise ValueError(f"n_samples must be non-negative, got {n_samples}")
        if n_videos <= 0:
            raise ValueError(
                f"cannot sample from an empty catalog, got {n_videos} videos"
            )
        views = self.views(n_videos)
        probs = views / views.sum()
        return rng.choice(np.arange(1, n_videos + 1), size=n_samples, p=probs)
