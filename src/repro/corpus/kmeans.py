"""Weighted k-means clustering, implemented from scratch.

The paper applies weighted k-means to the normalized category feature
space, with weights equal to the transcoding time spent on each category,
then takes the highest-weight member (the mode) of each cluster as its
representative.  This module provides exactly that primitive: Lloyd's
algorithm with weighted centroid updates, k-means++ seeding (weighted),
and deterministic restarts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["KMeansResult", "weighted_kmeans"]


@dataclass
class KMeansResult:
    """Outcome of a weighted k-means run.

    Attributes:
        centroids: ``(k, d)`` cluster centers.
        assignments: ``(n,)`` cluster index per point.
        inertia: Weighted sum of squared distances to assigned centroids.
        iterations: Lloyd iterations until convergence.
    """

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    iterations: int


def _plusplus_seed(
    points: np.ndarray, weights: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Weighted k-means++ seeding: spread initial centroids apart."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]))
    probs = weights / weights.sum()
    first = rng.choice(n, p=probs)
    centroids[0] = points[first]
    closest_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        scores = weights * closest_sq
        total = scores.sum()
        if total <= 0:
            # All mass sits on existing centroids; fill with weighted draws.
            idx = rng.choice(n, p=probs)
        else:
            idx = rng.choice(n, p=scores / total)
        centroids[i] = points[idx]
        dist_sq = np.sum((points - centroids[i]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centroids


def _lloyd(
    points: np.ndarray,
    weights: np.ndarray,
    centroids: np.ndarray,
    max_iter: int,
    tol: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, float, int]:
    k = centroids.shape[0]
    assignments = np.zeros(points.shape[0], dtype=np.int64)
    for iteration in range(1, max_iter + 1):
        # Assignment step.
        dists = np.sum(
            (points[:, None, :] - centroids[None, :, :]) ** 2, axis=2
        )
        assignments = np.argmin(dists, axis=1)
        # Update step (weighted means); empty clusters restart on the
        # heaviest poorly-served point.
        new_centroids = centroids.copy()
        for c in range(k):
            mask = assignments == c
            mass = weights[mask].sum()
            if mass > 0:
                new_centroids[c] = np.average(
                    points[mask], axis=0, weights=weights[mask]
                )
            else:
                worst = np.argmax(weights * dists[np.arange(len(points)), assignments])
                new_centroids[c] = points[worst]
        shift = float(np.max(np.abs(new_centroids - centroids)))
        centroids = new_centroids
        if shift < tol:
            break
    dists = np.sum((points[:, None, :] - centroids[None, :, :]) ** 2, axis=2)
    assignments = np.argmin(dists, axis=1)
    inertia = float(
        np.sum(weights * dists[np.arange(len(points)), assignments])
    )
    return centroids, assignments, inertia, iteration


def weighted_kmeans(
    points: np.ndarray,
    weights: np.ndarray,
    k: int,
    seed: int = 0,
    restarts: int = 4,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> KMeansResult:
    """Cluster weighted points into ``k`` groups; best of ``restarts`` runs.

    Args:
        points: ``(n, d)`` feature matrix.
        weights: ``(n,)`` non-negative weights (transcoding time).
        k: Number of clusters; must satisfy ``1 <= k <= n``.
        seed: Deterministic seed.
        restarts: Independent k-means++ restarts; the lowest-inertia run
            wins.
        max_iter: Lloyd iteration cap per restart.
        tol: Centroid-shift convergence tolerance.
    """
    points = np.asarray(points, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be (n, d), got shape {points.shape}")
    if weights.shape != (points.shape[0],):
        raise ValueError(
            f"weights must be ({points.shape[0]},), got {weights.shape}"
        )
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    if weights.sum() <= 0:
        raise ValueError("total weight must be positive")
    if not 1 <= k <= points.shape[0]:
        raise ValueError(
            f"k must be in [1, {points.shape[0]}], got {k}"
        )
    rng = np.random.default_rng(seed)
    best: Optional[KMeansResult] = None
    for _ in range(max(1, restarts)):
        centroids = _plusplus_seed(points, weights, k, rng)
        centroids, assignments, inertia, iters = _lloyd(
            points, weights, centroids, max_iter, tol, rng
        )
        if best is None or inertia < best.inertia:
            best = KMeansResult(centroids, assignments, inertia, iters)
    return best
