"""Reference transcode operations: the measuring sticks of Section 4.2.

For every suite video, each scenario has a reference transcode "grounded
in real-world video sharing infrastructure" that candidates are scored
against:

* **Upload**: single pass, constant quality (CRF 18) -- the original must
  not degrade; bits are cheap because the result is temporary.
* **Live**: single pass at the VOD target bitrate, with the encoder
  effort level *inversely proportional to resolution* so the real-time
  latency bound holds -- selected empirically per video by walking a
  degradation ladder until the modeled speed sustains the output pixel
  rate.
* **VOD** (also the **Platform** reference): two-pass at the target
  bitrate, medium effort -- the average offline case.
* **Popular**: two-pass at the target bitrate at the highest effort
  (``veryslow``): quality and bits matter, compute is amortized.

The *VOD target bitrate* for a video is the size of its CRF-23 (default
quality) encode -- a per-content operating point, like the per-title
ladders real services use.

References are deterministic but expensive, so :class:`ReferenceStore`
computes them lazily and caches per video.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.codec.presets import EncoderConfig, preset
from repro.encoders.base import RateSpec, Transcoder, TranscodeResult
from repro.encoders.software import SoftwareTranscoder, X264Transcoder
from repro.video.video import Video

from repro.core.scenarios import Scenario

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.exec.cache import TranscodeCache

__all__ = ["ReferenceStore", "live_ladder", "vod_target_bitrate"]

#: Upload reference: visually lossless single pass.
_UPLOAD_CRF = 18
#: The VOD target operating point (libx264's default quality).
_VOD_TARGET_CRF = 23


def live_ladder() -> List[Tuple[str, EncoderConfig]]:
    """The effort-degradation ladder live references walk, fast to faster.

    The final rungs trade quality hard for speed (huge skip bias, no
    search, no loop filter) -- what software encoders actually do when
    they must not fall behind a live stream (Section 6.1).
    """
    return [
        ("medium", preset("medium")),
        ("fast", preset("fast")),
        ("veryfast", preset("veryfast")),
        ("ultrafast", preset("ultrafast")),
        ("ultrafast+skip4", preset("ultrafast").derived(skip_bias=4.0)),
        (
            "turbo",
            preset("ultrafast").derived(
                skip_bias=16.0, search_method="none", deblock=False
            ),
        ),
    ]


def vod_target_bitrate(
    video: Video, cache: Optional["TranscodeCache"] = None
) -> float:
    """Per-video VOD target bitrate (bits/second): the CRF-23 size."""
    transcoder: Transcoder = X264Transcoder("medium")
    if cache is not None:
        transcoder = cache.wrap(transcoder)
    result = transcoder.transcode(video, RateSpec.for_crf(_VOD_TARGET_CRF))
    return result.bitrate


@dataclass
class Reference:
    """A computed reference: the transcode plus how it was produced."""

    result: TranscodeResult
    rate: RateSpec
    config_label: str


class ReferenceStore:
    """Lazily computes and caches per-video scenario references.

    Two cache layers: the in-memory per-store maps below (one store per
    suite -- never shared between callers), and an optional persistent
    :class:`~repro.exec.cache.TranscodeCache` every reference encode is
    routed through, so reference work survives the process.
    """

    def __init__(self, cache: Optional["TranscodeCache"] = None) -> None:
        self._targets: Dict[str, float] = {}
        self._refs: Dict[Tuple[str, Scenario], Reference] = {}
        self._cache = cache

    @property
    def cache(self) -> Optional["TranscodeCache"]:
        """The attached persistent transcode cache, if any."""
        return self._cache

    def attach_cache(self, cache: "TranscodeCache") -> None:
        """Route subsequent reference encodes through ``cache``."""
        self._cache = cache

    def target_bitrate(self, video: Video) -> float:
        """The video's VOD target bitrate (cached)."""
        key = self._key(video)
        if key not in self._targets:
            self._targets[key] = vod_target_bitrate(video, cache=self._cache)
        return self._targets[key]

    def reference(self, video: Video, scenario: Scenario) -> Reference:
        """The scenario's reference transcode for ``video`` (cached)."""
        key = (self._key(video), scenario)
        if key not in self._refs:
            self._refs[key] = self._compute(video, scenario)
        return self._refs[key]

    def install(self, video: Video, scenario: Scenario, reference: Reference) -> None:
        """Adopt a reference computed elsewhere (e.g. by a pool worker)."""
        self._refs[(self._key(video), scenario)] = reference

    def has(self, video: Video, scenario: Scenario) -> bool:
        """Whether the reference is already materialized in memory."""
        return (self._key(video), scenario) in self._refs

    # -- internals ----------------------------------------------------------

    def _wrap(self, transcoder: Transcoder) -> Transcoder:
        """Route ``transcoder`` through the persistent cache, if attached."""
        if self._cache is None:
            return transcoder
        return self._cache.wrap(transcoder)

    @staticmethod
    def _key(video: Video) -> str:
        if not video.name:
            raise ValueError("reference store needs named videos")
        return f"{video.name}:{video.width}x{video.height}@{video.fps:g}x{len(video)}"

    def _compute(self, video: Video, scenario: Scenario) -> Reference:
        if scenario is Scenario.UPLOAD:
            rate = RateSpec.for_crf(_UPLOAD_CRF)
            result = self._wrap(X264Transcoder("medium")).transcode(video, rate)
            return Reference(result, rate, "x264-medium crf18")

        target = self.target_bitrate(video)
        if scenario is Scenario.LIVE:
            return self._compute_live(video, target)
        if scenario in (Scenario.VOD, Scenario.PLATFORM):
            rate = RateSpec.for_bitrate(target, two_pass=True)
            result = self._wrap(X264Transcoder("medium")).transcode(video, rate)
            return Reference(result, rate, "x264-medium 2-pass")
        if scenario is Scenario.POPULAR:
            rate = RateSpec.for_bitrate(target, two_pass=True)
            result = self._wrap(X264Transcoder("veryslow")).transcode(video, rate)
            return Reference(result, rate, "x264-veryslow 2-pass")
        raise ValueError(f"unknown scenario {scenario!r}")

    def _compute_live(self, video: Video, target: float) -> Reference:
        """Walk the ladder until the encode sustains real time."""
        rate = RateSpec.for_bitrate(target)
        realtime = video.nominal_pixel_rate / 1e6
        last: Optional[Tuple[str, TranscodeResult]] = None
        for label, config in live_ladder():
            result = self._wrap(
                SoftwareTranscoder(f"x264-{label}", config)
            ).transcode(video, rate)
            last = (label, result)
            if result.speed_mpixels >= realtime:
                break
        label, result = last
        return Reference(result, rate, f"x264-{label} 1-pass")
