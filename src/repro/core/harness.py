"""Candidate-side harness: driving a backend into a scenario's regime.

The paper's hardware results (Tables 3/4) are produced by "var[ying] the
target bitrate using a bisection algorithm until results satisfy the
quality constraints by a small margin".  :func:`bisect_to_quality` is that
algorithm; :func:`candidate_for_scenario` packages the per-scenario recipe
for any backend:

* Upload: the candidate encodes at constant quality, like the reference.
* Live: single pass at the reference bitrate target (then the real-time
  constraint does the judging).
* VOD / Popular: bisection on the bitrate target until the candidate's
  quality matches the reference's within a small margin from above.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.encoders.base import RateSpec, Transcoder, TranscodeResult
from repro.encoders.hardware import HardwareTranscoder
from repro.video.video import Video

from repro.core.reference import Reference, ReferenceStore
from repro.core.scenarios import Scenario

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.exec.cache import TranscodeCache

__all__ = ["bisect_to_quality", "candidate_for_scenario"]

_UPLOAD_CRF = 18


def _innermost(transcoder: Transcoder) -> Transcoder:
    """Peel decorator layers (cache, fault injection) off a backend.

    Capability checks -- "does this backend support two-pass?" -- must see
    the real encoder, not whichever wrapper happens to be outermost.
    """
    seen = set()
    while id(transcoder) not in seen:
        seen.add(id(transcoder))
        inner = getattr(transcoder, "inner", None)
        if not isinstance(inner, Transcoder):
            break
        transcoder = inner
    return transcoder


def bisect_to_quality(
    transcoder: Transcoder,
    video: Video,
    target_db: float,
    initial_bitrate: float,
    two_pass: bool = False,
    iterations: int = 7,
    margin_db: float = -0.01,
    cache: Optional["TranscodeCache"] = None,
) -> TranscodeResult:
    """Find the smallest bitrate whose transcode meets ``target_db``.

    Exponentially brackets the target from ``initial_bitrate``, then
    bisects.  Returns the cheapest encode observed that satisfies
    ``quality >= target_db - margin_db`` -- the default negative margin
    means the result beats the target "by a small margin", exactly how
    the paper drives its GPU bisections -- or
    the highest-quality attempt if none satisfied it -- the caller's
    constraint check will then fail the video, which is itself a result
    (it is how Section 6.2 concludes GPUs produce no valid Popular
    transcodes).
    """
    if not math.isfinite(initial_bitrate) or initial_bitrate <= 0:
        raise ValueError(
            f"initial bitrate must be positive and finite, got {initial_bitrate}"
        )
    if iterations < 1:
        raise ValueError(f"need at least one iteration, got {iterations}")
    if cache is not None:
        transcoder = cache.wrap(transcoder)

    def run(bitrate: float) -> TranscodeResult:
        return transcoder.transcode(
            video, RateSpec.for_bitrate(bitrate, two_pass=two_pass)
        )

    lo = hi = initial_bitrate
    result = run(initial_bitrate)
    best: Optional[TranscodeResult] = None
    attempts = 1
    if result.quality_db >= target_db - margin_db:
        best = result
        # Bracket downward: find a bitrate that fails.
        while attempts < iterations:
            lo /= 2.0
            result = run(lo)
            attempts += 1
            if result.quality_db < target_db - margin_db:
                # lo failed, so the last *passing* bitrate -- 2 * lo -- is
                # the tight upper bracket.  Leaving hi at initial_bitrate
                # would spend bisection iterations re-exploring an
                # interval every point of which is already known to pass.
                hi = 2.0 * lo
                break
            if result.compressed_bytes < best.compressed_bytes:
                best = result
        else:
            return best
        assert lo < hi <= initial_bitrate, (
            f"downward bracket must satisfy lo < hi <= initial "
            f"(lo={lo}, hi={hi}, initial={initial_bitrate})"
        )
    else:
        # Bracket upward: find a bitrate that passes.
        while attempts < iterations:
            hi *= 2.0
            result = run(hi)
            attempts += 1
            if result.quality_db >= target_db - margin_db:
                best = result
                break
        if best is None:
            return result  # never reached the target; report the best try
    # Bisect between failing lo and passing hi.
    while attempts < iterations:
        mid = (lo + hi) / 2.0
        result = run(mid)
        attempts += 1
        if result.quality_db >= target_db - margin_db:
            hi = mid
            if result.compressed_bytes < best.compressed_bytes:
                best = result
        else:
            lo = mid
    return best


def candidate_for_scenario(
    transcoder: Transcoder,
    video: Video,
    scenario: Scenario,
    refs: ReferenceStore,
    bisect_iterations: int = 7,
    cache: Optional["TranscodeCache"] = None,
) -> TranscodeResult:
    """Run ``transcoder`` on ``video`` the way the scenario demands.

    ``cache`` (or a cache already attached to ``refs``) routes every
    candidate encode -- including each bisection probe -- through the
    persistent transcode cache.
    """
    if cache is None:
        cache = refs.cache
    if cache is not None:
        transcoder = cache.wrap(transcoder)
    reference = refs.reference(video, scenario)
    if scenario is Scenario.UPLOAD:
        return transcoder.transcode(video, RateSpec.for_crf(_UPLOAD_CRF))
    if scenario is Scenario.LIVE:
        # Single pass at the reference bitrate; hold reference quality
        # (the configuration the paper chose for its Live GPU study).
        return transcoder.transcode(
            video, RateSpec.for_bitrate(reference.rate.bitrate_bps)
        )
    if scenario in (Scenario.VOD, Scenario.POPULAR):
        two_pass = not isinstance(_innermost(transcoder), HardwareTranscoder)
        return bisect_to_quality(
            transcoder,
            video,
            target_db=reference.result.quality_db,
            initial_bitrate=reference.rate.bitrate_bps,
            two_pass=two_pass,
            iterations=bisect_iterations,
        )
    if scenario is Scenario.PLATFORM:
        raise ValueError(
            "the Platform scenario compares machines, not encoders; use "
            "repro.core.benchmark.run_platform"
        )
    raise ValueError(f"unknown scenario {scenario!r}")
