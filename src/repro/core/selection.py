"""Algorithmic video selection: the paper's Section 4.1 pipeline.

1. Accumulate transcoding time per (resolution, framerate, entropy)
   category from the corpus logs.
2. Linearize resolution and entropy with base-2 logs, normalize each
   dimension to [-1, 1], and run weighted k-means (weights = transcoding
   time) to find ``k`` centroids.
3. Take the highest-weight category of each cluster -- the mode -- as the
   cluster representative (representativeness), while every category
   belongs to some cluster (coverage).
4. Materialize one video per selected category and cut it to the
   5-second-equivalent chunk whose bitrate best matches the whole clip.
5. Re-measure each selected clip's entropy the way the paper defines it
   (CRF-18 bits/pixel/second) for Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.corpus.category import VideoCategory, feature_matrix
from repro.corpus.kmeans import weighted_kmeans
from repro.corpus.synthetic import (
    PROFILES,
    RenderProfile,
    SyntheticCorpus,
    video_for_category,
)
from repro.video.entropy import measure_entropy
from repro.video.video import Video

__all__ = ["SelectedVideo", "select_categories", "select_suite_videos", "pick_chunk"]


@dataclass
class SelectedVideo:
    """One suite entry: the category it represents plus the actual clip.

    ``measured_entropy`` is re-measured on the rendered clip (CRF-18
    bits/pixel/second), which is what Table 2 reports; it need not equal
    the category's nominal entropy exactly.
    """

    category: VideoCategory
    video: Video
    measured_entropy: float
    cluster_weight: float

    @property
    def name(self) -> str:
        return self.video.name


def select_categories(
    categories: Sequence[VideoCategory],
    k: int = 15,
    seed: int = 0,
) -> List[VideoCategory]:
    """Steps 1-3: weighted k-means and mode-of-cluster representatives.

    Returns ``k`` categories ordered by resolution then entropy (the
    Table 2 presentation order).  Duplicate representatives (two clusters
    whose mode is the same category) are replaced by the next-heaviest
    member so the suite always has ``k`` distinct videos.
    """
    cats = list(categories)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(cats) < k:
        raise ValueError(f"need at least {k} categories, got {len(cats)}")
    points = feature_matrix(cats)
    weights = np.array([c.weight for c in cats])
    result = weighted_kmeans(points, weights, k=k, seed=seed)

    chosen: List[VideoCategory] = []
    taken = set()
    for cluster in range(k):
        members = [i for i in range(len(cats)) if result.assignments[i] == cluster]
        if not members:
            continue
        members.sort(key=lambda i: -cats[i].weight)
        for i in members:
            if i not in taken:
                taken.add(i)
                chosen.append(cats[i])
                break
    chosen.sort(key=lambda c: (c.kpixels, c.entropy))
    return chosen


def pick_chunk(video: Video, chunk_seconds: float = 5.0) -> Video:
    """Step 4: the chunk whose bitrate best matches the whole video.

    The paper splits originals into non-overlapping 5-second chunks and
    keeps the one with the most representative bitrate; we use per-chunk
    CRF-18 entropy as the bitrate proxy.  Clips shorter than one chunk are
    returned unchanged.
    """
    chunks = video.chunk(chunk_seconds)
    if len(chunks) <= 1:
        return video
    entropies = [measure_entropy(c) for c in chunks]
    target = float(np.mean(entropies))
    best = int(np.argmin([abs(e - target) for e in entropies]))
    return chunks[best]


def select_suite_videos(
    corpus: SyntheticCorpus,
    k: int = 15,
    profile: "RenderProfile | str" = "fast",
    seed: int = 0,
) -> List[SelectedVideo]:
    """The full pipeline: categories -> clips -> measured entropies."""
    if isinstance(profile, str):
        profile = PROFILES[profile]
    categories = select_categories(corpus.significant_categories(), k=k, seed=seed)
    selected: List[SelectedVideo] = []
    used_names = set()
    for i, category in enumerate(categories):
        video = video_for_category(category, profile=profile, seed=seed + i)
        video = pick_chunk(video)
        name = video.name
        suffix = 2
        while name in used_names:
            name = f"{video.name}{suffix}"
            suffix += 1
        used_names.add(name)
        video = video.with_name(name)
        selected.append(
            SelectedVideo(
                category=category,
                video=video,
                measured_entropy=measure_entropy(video),
                cluster_weight=category.weight,
            )
        )
    return selected
