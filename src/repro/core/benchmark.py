"""Suite construction and scenario runs: the benchmark's front door.

``vbench_suite()`` builds the 15-video suite from the synthetic corpus via
the Section 4.1 selection pipeline (cached per profile/seed, because
selection re-measures entropy with real encodes).  ``run_scenario()``
takes any backend through a scenario across the whole suite and returns a
:class:`ScenarioReport` with the per-video ratios and scores the paper's
reporting rules require (Section 4.3: report per video; do not average).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.constants import SUITE_SELECTION_SEED
from repro.corpus.synthetic import PROFILES, RenderProfile, SyntheticCorpus
from repro.encoders.base import Transcoder, TranscodeResult
from repro.encoders.registry import get_transcoder
from repro.simd.analysis import modeled_seconds
from repro.simd.isa import IsaLevel
from repro.video.video import Video

from repro.core.harness import candidate_for_scenario
from repro.core.reference import ReferenceStore
from repro.core.scenarios import Scenario, ScenarioScore, score_scenario
from repro.core.selection import SelectedVideo, select_suite_videos

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.exec.cache import CacheStats, TranscodeCache

__all__ = [
    "SuiteVideo",
    "BenchmarkSuite",
    "ScenarioReport",
    "vbench_suite",
    "run_scenario",
    "run_platform",
]


@dataclass
class SuiteVideo:
    """One benchmark video: the clip plus its Table 2 row."""

    name: str
    video: Video
    kpixels: int
    framerate: int
    entropy: float
    nominal_resolution: Tuple[int, int]


@dataclass
class BenchmarkSuite:
    """The selected suite plus its own (non-shared) reference store.

    ``videos`` is stored as a tuple: the membership of a built suite is
    immutable, so no caller can perturb another's view of it.  Each suite
    carries a *fresh* :class:`ReferenceStore` -- references accumulated
    by one run never leak into an unrelated one.
    """

    videos: Sequence[SuiteVideo]
    profile: RenderProfile
    seed: int
    references: ReferenceStore = field(default_factory=ReferenceStore)

    def __post_init__(self) -> None:
        self.videos = tuple(self.videos)
        if not self.videos:
            raise ValueError("a benchmark suite needs at least one video")

    def __len__(self) -> int:
        return len(self.videos)

    def __iter__(self):
        return iter(self.videos)

    def names(self) -> List[str]:
        return [v.name for v in self.videos]

    def table2(self) -> List[Tuple[str, str, int, float]]:
        """Rows of Table 2: (resolution, name, framerate, entropy)."""
        return [
            (
                f"{v.nominal_resolution[0]}x{v.nominal_resolution[1]}",
                v.name,
                v.framerate,
                round(v.entropy, 1),
            )
            for v in self.videos
        ]


#: Caches the *selection* (the expensive part: k-means plus real encodes
#: for entropy re-measurement), never a built suite.  Every vbench_suite()
#: call assembles a fresh BenchmarkSuite around the cached selection, so
#: no two callers ever share a mutable suite or reference store.
_SELECTION_CACHE: Dict[Tuple[str, int, int], Tuple[SelectedVideo, ...]] = {}


def vbench_suite(
    profile: str = "fast",
    k: int = 15,
    seed: int = SUITE_SELECTION_SEED,
    corpus: Optional[SyntheticCorpus] = None,
) -> BenchmarkSuite:
    """Build the vbench suite (selection cached, suite always isolated).

    Args:
        profile: Rendering profile name (``tiny``/``fast``/``bench``/
            ``full``) -- controls stand-in clip scale, see
            :data:`repro.corpus.synthetic.PROFILES`.
        k: Number of videos (the paper uses 15).
        seed: Corpus + selection seed.
        corpus: Optionally reuse an existing corpus (skips regeneration;
            such selections are not cached).

    Returns a *new* :class:`BenchmarkSuite` on every call: the selected
    videos are shared (they are immutable and expensive to recompute) but
    the suite object and its :class:`ReferenceStore` are fresh, so one
    caller's accumulated references and mutations cannot leak into
    another's run.
    """
    if profile not in PROFILES:
        raise ValueError(
            f"unknown profile {profile!r}; expected one of {sorted(PROFILES)}"
        )
    key = (profile, k, seed)
    if corpus is None and key in _SELECTION_CACHE:
        selected = _SELECTION_CACHE[key]
    else:
        corpus_obj = corpus or SyntheticCorpus(seed=seed)
        selected = tuple(
            select_suite_videos(corpus_obj, k=k, profile=profile, seed=seed)
        )
        if corpus is None:
            _SELECTION_CACHE[key] = selected
    return BenchmarkSuite(
        videos=tuple(_suite_video(s) for s in selected),
        profile=PROFILES[profile],
        seed=seed,
    )


def _suite_video(selected: SelectedVideo) -> SuiteVideo:
    return SuiteVideo(
        name=selected.name,
        video=selected.video,
        kpixels=selected.category.kpixels,
        framerate=selected.category.framerate,
        entropy=selected.measured_entropy,
        nominal_resolution=(selected.category.width, selected.category.height),
    )


@dataclass
class ScenarioReport:
    """Per-video scenario results for one backend (Section 4.3 format).

    ``cache`` carries the transcode-cache statistics of the run that
    produced this report (``None`` when no cache was in play).  It is
    deliberately *not* part of :meth:`to_table`: the score table must be
    byte-identical between serial, parallel, cold- and warm-cache runs.
    """

    scenario: Scenario
    backend: str
    scores: List[ScenarioScore]
    candidates: List[TranscodeResult]
    references: List[TranscodeResult]
    cache: Optional["CacheStats"] = None

    def to_table(self) -> str:
        """ASCII table: one row per video, ratios and score (or '-')."""
        lines = [
            f"scenario={self.scenario.value} backend={self.backend}",
            f"{'video':<14} {'S':>7} {'B':>7} {'Q':>7} {'score':>8}",
        ]
        for s in self.scores:
            score = f"{s.score:8.2f}" if s.score is not None else f"{'-':>8}"
            lines.append(
                f"{s.video_name:<14} {s.ratios.speed:7.2f} "
                f"{s.ratios.bitrate:7.2f} {s.ratios.quality:7.3f} {score}"
            )
        return "\n".join(lines)

    def valid_scores(self) -> List[float]:
        """Scores of the videos that met the constraint."""
        return [s.score for s in self.scores if s.score is not None]

    def cache_summary(self) -> str:
        """One deterministic line of cache statistics (or a placeholder)."""
        if self.cache is None:
            return "cache: disabled"
        return self.cache.to_line()


def run_scenario(
    suite: BenchmarkSuite,
    scenario: Scenario,
    backend: Union[str, Transcoder],
    bisect_iterations: int = 7,
    jobs: int = 1,
    cache: Optional["TranscodeCache"] = None,
) -> ScenarioReport:
    """Score ``backend`` under ``scenario`` on every suite video.

    Args:
        jobs: Videos scored concurrently.  ``jobs > 1`` fans out over a
            process pool (:func:`repro.exec.runner.run_scenario_parallel`)
            and produces a byte-identical report.
        cache: Optional persistent transcode cache consulted (and filled)
            by every encode of the run -- candidate, bisection probes,
            and references alike.  The report's ``cache`` field carries
            this run's hit/miss/byte statistics.
    """
    if jobs < 1:
        raise ValueError(f"need at least one job, got {jobs}")
    if scenario is Scenario.PLATFORM:
        raise ValueError("use run_platform for the Platform scenario")
    if jobs > 1:
        from repro.exec.runner import run_scenario_parallel

        return run_scenario_parallel(
            suite,
            scenario,
            backend,
            bisect_iterations=bisect_iterations,
            jobs=jobs,
            cache=cache,
        )
    transcoder = (
        get_transcoder(backend) if isinstance(backend, str) else backend
    )
    stats_before = None
    if cache is not None:
        suite.references.attach_cache(cache)
        transcoder = cache.wrap(transcoder)
        stats_before = cache.stats.copy()
    scores: List[ScenarioScore] = []
    candidates: List[TranscodeResult] = []
    references: List[TranscodeResult] = []
    for entry in suite:
        reference = suite.references.reference(entry.video, scenario)
        candidate = candidate_for_scenario(
            transcoder, entry.video, scenario, suite.references,
            bisect_iterations=bisect_iterations,
        )
        scores.append(score_scenario(scenario, candidate, reference.result))
        candidates.append(candidate)
        references.append(reference.result)
    return ScenarioReport(
        scenario=scenario,
        backend=transcoder.name,
        scores=scores,
        candidates=candidates,
        references=references,
        cache=cache.stats.since(stats_before) if cache is not None else None,
    )


def run_platform(
    suite: BenchmarkSuite,
    isa: IsaLevel,
    baseline_isa: IsaLevel = IsaLevel.AVX2,
) -> List[Tuple[str, float]]:
    """The Platform scenario: same transcode, different machine.

    Re-times the VOD reference transcodes under a different ISA level of
    the cycle model (a stand-in for changing compiler/architecture, as
    the paper describes) and reports ``S`` per video.  Bits and quality
    are identical by construction, so the B = Q = 1 constraint holds.
    """
    results: List[Tuple[str, float]] = []
    for entry in suite:
        reference = suite.references.reference(entry.video, Scenario.PLATFORM)
        counters = reference.result.counters
        base_s = modeled_seconds(counters, isa=baseline_isa)
        new_s = modeled_seconds(counters, isa=isa)
        results.append((entry.name, base_s / new_s))
    return results
