"""Figure 1: upload growth versus CPU performance growth, 2006-2016.

The paper's motivation chart overlays YouTube's hours-uploaded-per-minute
against the median SPECint Rate 2006 result, both normalized to mid-2007.
The series below are digitized from the public sources the paper cites
(Tubular Insights for uploads; SPEC result medians per calendar year) --
coarse by nature, but the *ratio* between the two growth curves is the
figure's entire point: uploads grew ~2 orders of magnitude while CPU
throughput grew ~1.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "YOUTUBE_HOURS_PER_MINUTE",
    "growth_since",
    "growth_gap",
]

#: Hours of video uploaded to YouTube per minute, by year (public figures:
#: 6 (2007), 15 (2009), 35 (2010), 48 (2011), 72 (2012), 100 (2013),
#: 300 (2014), 400 (2015), 500 (2016)).
YOUTUBE_HOURS_PER_MINUTE: Dict[int, float] = {
    2006: 3.0,
    2007: 6.0,
    2008: 10.0,
    2009: 15.0,
    2010: 35.0,
    2011: 48.0,
    2012: 72.0,
    2013: 100.0,
    2014: 300.0,
    2015: 400.0,
    2016: 500.0,
}

#: Median SPECint Rate 2006 result per calendar year (normalized units;
#: approximates per-socket server throughput growth).
SPECRATE_MEDIAN: Dict[int, float] = {
    2006: 22.0,
    2007: 30.0,
    2008: 45.0,
    2009: 70.0,
    2010: 105.0,
    2011: 140.0,
    2012: 185.0,
    2013: 230.0,
    2014: 290.0,
    2015: 350.0,
    2016: 420.0,
}


def growth_since(series: Dict[int, float], base_year: int = 2007) -> List[Tuple[int, float]]:
    """The series normalized to its ``base_year`` value (Figure 1's y-axis)."""
    if base_year not in series:
        raise ValueError(f"base year {base_year} not in series")
    base = series[base_year]
    if base <= 0:
        raise ValueError("base value must be positive")
    return [(year, value / base) for year, value in sorted(series.items())]


def growth_gap(year: int = 2016, base_year: int = 2007) -> float:
    """How much faster uploads grew than CPUs between two years.

    Values well above 1 are the paper's motivation: transcoding demand
    outruns general-purpose compute.
    """
    uploads = dict(growth_since(YOUTUBE_HOURS_PER_MINUTE, base_year))
    cpus = dict(growth_since(SPECRATE_MEDIAN, base_year))
    if year not in uploads or year not in cpus:
        raise ValueError(f"year {year} not covered by both series")
    return uploads[year] / cpus[year]
