"""The five vbench scoring scenarios (Table 1 of the paper).

Each scenario reflects one stage of the sharing-service pipeline
(Section 2.5) and eliminates one metric axis with a hard Quality-of-
Service constraint, scoring the remaining two as a product of ratios
against the reference transcode:

======== =========================================== =========
Scenario Constraint                                  Score
======== =========================================== =========
Upload   B > 0.2 (at most 5x the reference bitrate)  S x Q
Live     S_new >= output Mpixel/s (real time)        B x Q
VOD      Q >= 1, or new quality >= 50 dB             S x B
Popular  B >= 1 and Q >= 1 and S >= 0.1              B x Q
Platform B = 1 and Q = 1 (identical transcode)       S
======== =========================================== =========

Ratios above 1 mean the candidate beats the reference on that axis:
``S = speed_new/speed_ref``, ``B = bitrate_ref/bitrate_new``,
``Q = quality_new/quality_ref``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.encoders.base import TranscodeResult

__all__ = ["Scenario", "Ratios", "ScenarioScore", "compute_ratios", "score_scenario"]

#: Visually lossless threshold for the VOD alternative constraint (dB).
VISUALLY_LOSSLESS_DB = 50.0
#: Tolerance used for the Platform scenario's B = 1 and Q = 1 equality.
_PLATFORM_TOLERANCE = 1e-9


class Scenario(enum.Enum):
    """The five real-world transcoding contexts vbench scores."""

    UPLOAD = "upload"
    LIVE = "live"
    VOD = "vod"
    POPULAR = "popular"
    PLATFORM = "platform"

    @property
    def realtime(self) -> bool:
        """Whether the scenario carries a hard real-time deadline.

        Live must keep up with the incoming stream: its deadline budget is
        the video's own duration.  The batch scenarios only need to finish
        "soon" (:class:`repro.robust.retry.DeadlinePolicy` scales their
        budgets from the clip duration instead).
        """
        return self is Scenario.LIVE


@dataclass(frozen=True)
class Ratios:
    """The three improvement ratios of one candidate-vs-reference pair.

    Attributes:
        speed: ``S`` -- candidate speed over reference speed.
        bitrate: ``B`` -- reference bitrate over candidate bitrate.
        quality: ``Q`` -- candidate quality over reference quality (dB).
        new_quality_db: Candidate absolute quality (the VOD constraint's
            visually-lossless escape hatch needs it).
        new_speed_mpixels: Candidate absolute speed (the Live real-time
            constraint needs it).
    """

    speed: float
    bitrate: float
    quality: float
    new_quality_db: float
    new_speed_mpixels: float


@dataclass(frozen=True)
class ScenarioScore:
    """Outcome of scoring one video under one scenario.

    ``score`` is ``None`` when the scenario's QoS constraint failed -- the
    paper reports such cells as empty (Table 5 footnote).
    """

    scenario: "Scenario"
    video_name: str
    ratios: Ratios
    constraint_met: bool
    score: Optional[float]


def compute_ratios(new: TranscodeResult, ref: TranscodeResult) -> Ratios:
    """S, B, Q of a candidate against its reference transcode."""
    ref_quality = ref.quality_db
    ref_speed = ref.speed_mpixels
    ref_bitrate = ref.bits_per_pixel_second
    if ref_quality <= 0 or ref_speed <= 0 or ref_bitrate <= 0:
        raise ValueError("reference transcode has degenerate metrics")
    new_bitrate = new.bits_per_pixel_second
    if new_bitrate <= 0:
        raise ValueError("candidate transcode produced no bits")
    return Ratios(
        speed=new.speed_mpixels / ref_speed,
        bitrate=ref_bitrate / new_bitrate,
        quality=new.quality_db / ref_quality,
        new_quality_db=new.quality_db,
        new_speed_mpixels=new.speed_mpixels,
    )


def _realtime_mpixels(result: TranscodeResult) -> float:
    """The output pixel rate the Live scenario must sustain (Mpixel/s).

    Uses the *nominal* resolution: a stand-in clip for a 1080p30 stream
    still represents a 62 Mpixel/s live obligation (see DESIGN.md on
    simulation scale).
    """
    return result.source.nominal_pixel_rate / 1e6


def score_scenario(
    scenario: "Scenario", new: TranscodeResult, ref: TranscodeResult
) -> ScenarioScore:
    """Apply Table 1: check the constraint, compute the two-ratio score."""
    ratios = compute_ratios(new, ref)
    if scenario is Scenario.UPLOAD:
        met = ratios.bitrate > 0.2
        score = ratios.speed * ratios.quality if met else None
    elif scenario is Scenario.LIVE:
        met = ratios.new_speed_mpixels >= _realtime_mpixels(new)
        score = ratios.bitrate * ratios.quality if met else None
    elif scenario is Scenario.VOD:
        met = ratios.quality >= 1.0 or ratios.new_quality_db >= VISUALLY_LOSSLESS_DB
        score = ratios.speed * ratios.bitrate if met else None
    elif scenario is Scenario.POPULAR:
        met = (
            ratios.bitrate >= 1.0
            and ratios.quality >= 1.0
            and ratios.speed >= 0.1
        )
        score = ratios.bitrate * ratios.quality if met else None
    elif scenario is Scenario.PLATFORM:
        met = (
            abs(ratios.bitrate - 1.0) < _PLATFORM_TOLERANCE
            and abs(ratios.quality - 1.0) < _PLATFORM_TOLERANCE
        )
        score = ratios.speed if met else None
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown scenario {scenario!r}")
    return ScenarioScore(
        scenario=scenario,
        video_name=new.source.name,
        ratios=ratios,
        constraint_met=met,
        score=score,
    )
