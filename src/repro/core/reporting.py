"""Result reporting per the paper's rules (Section 4.3).

Each transcode reports three values -- speed, bitrate, quality -- per
video.  Scores are computed only when the scenario constraint holds, and
results are *never* aggregated into averages: "significant information
would be lost"; providers weight videos by their own corpus.  The helpers
here format per-video tables (ASCII and CSV) and refuse to average.
"""

from __future__ import annotations

import io
from typing import List, Sequence

from repro.core.scenarios import ScenarioScore

__all__ = ["format_scores", "scores_to_csv", "format_metric_rows"]


def format_scores(scores: Sequence[ScenarioScore], title: str = "") -> str:
    """ASCII table of per-video ratios and scores ('-' = constraint failed)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{'video':<16} {'S':>8} {'B':>8} {'Q':>8} {'score':>9}")
    for s in scores:
        cell = f"{s.score:9.2f}" if s.score is not None else f"{'-':>9}"
        lines.append(
            f"{s.video_name:<16} {s.ratios.speed:8.2f} {s.ratios.bitrate:8.2f} "
            f"{s.ratios.quality:8.3f} {cell}"
        )
    return "\n".join(lines)


def scores_to_csv(scores: Sequence[ScenarioScore]) -> str:
    """CSV with one row per video (empty score cell = constraint failed)."""
    buffer = io.StringIO()
    buffer.write("scenario,video,S,B,Q,constraint_met,score\n")
    for s in scores:
        score = f"{s.score:.6g}" if s.score is not None else ""
        buffer.write(
            f"{s.scenario.value},{s.video_name},{s.ratios.speed:.6g},"
            f"{s.ratios.bitrate:.6g},{s.ratios.quality:.6g},"
            f"{int(s.constraint_met)},{score}\n"
        )
    return buffer.getvalue()


def format_metric_rows(
    names: Sequence[str],
    columns: Sequence[Sequence[float]],
    headers: Sequence[str],
    title: str = "",
    precision: int = 2,
) -> str:
    """Generic per-video metric table (used by the figure benchmarks)."""
    if any(len(col) != len(names) for col in columns):
        raise ValueError("all columns must match the number of videos")
    if len(headers) != len(columns):
        raise ValueError("one header per column required")
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'video':<16} " + " ".join(f"{h:>10}" for h in headers)
    lines.append(header)
    for i, name in enumerate(names):
        row = f"{name:<16} " + " ".join(
            f"{col[i]:>10.{precision}f}" for col in columns
        )
        lines.append(row)
    return "\n".join(lines)
