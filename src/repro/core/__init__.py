"""vbench core: the paper's contribution.

* :mod:`repro.core.selection` -- the algorithmic video selection pipeline
  (weighted k-means over corpus categories, mode representative, chunking).
* :mod:`repro.core.benchmark` -- suite construction and scenario runs.
* :mod:`repro.core.scenarios` -- Table 1: constraints and scores.
* :mod:`repro.core.reference` -- the reference transcode operations.
* :mod:`repro.core.harness` -- bisection to quality targets, Figure 9 runs.
* :mod:`repro.core.coverage` -- Figure 4's coverage comparison.
* :mod:`repro.core.reporting` -- result tables (Section 4.3's rules).
* :mod:`repro.core.motivation` -- Figure 1's growth series.
"""

from repro.core.benchmark import BenchmarkSuite, SuiteVideo, run_scenario, vbench_suite
from repro.core.scenarios import Ratios, Scenario, ScenarioScore, score_scenario

__all__ = [
    "BenchmarkSuite",
    "Ratios",
    "Scenario",
    "ScenarioScore",
    "SuiteVideo",
    "run_scenario",
    "score_scenario",
    "vbench_suite",
]
