"""Coverage analysis: does a video suite span the corpus? (Figure 4)

The paper evaluates suites by overlaying them on the (resolution, entropy)
scatter of the internal coverage set.  We quantify the same comparison:

* :func:`scatter_points` -- the (Kpixels, entropy) points of any category
  list, ready to plot as Figure 4 does;
* :func:`coverage_metrics` -- numbers behind the visual claim: entropy
  span, resolution span, and the mean/max distance from coverage-set
  categories to their nearest suite member in the normalized clustering
  feature space (lower = better covered).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.corpus.category import VideoCategory, feature_matrix

__all__ = ["CoverageMetrics", "scatter_points", "coverage_metrics", "compare_suites"]


@dataclass(frozen=True)
class CoverageMetrics:
    """How well a suite covers a target corpus.

    Attributes:
        entropy_decades: log10 span of the suite's entropy values.
        resolution_count: Distinct resolutions in the suite.
        mean_gap: Mean normalized-feature distance from each target
            category to its nearest suite category.
        max_gap: Worst-case such distance (the biggest hole).
    """

    entropy_decades: float
    resolution_count: int
    mean_gap: float
    max_gap: float


def scatter_points(categories: Sequence[VideoCategory]) -> List[Tuple[float, float]]:
    """Figure 4 scatter data: (resolution in Kpixels, entropy) per category."""
    return [(float(c.kpixels), float(c.entropy)) for c in categories]


def coverage_metrics(
    suite: Sequence[VideoCategory],
    target: Sequence[VideoCategory],
) -> CoverageMetrics:
    """Coverage of ``target`` by ``suite`` (see class docstring).

    Distances are computed in the same normalized feature space the
    selection pipeline clusters in, with the normalization fit on the
    union so the two sets share coordinates.
    """
    suite = list(suite)
    target = list(target)
    if not suite or not target:
        raise ValueError("need non-empty suite and target")
    union = feature_matrix(suite + target)
    suite_pts = union[: len(suite)]
    target_pts = union[len(suite) :]
    dists = np.sqrt(
        ((target_pts[:, None, :] - suite_pts[None, :, :]) ** 2).sum(axis=2)
    )
    nearest = dists.min(axis=1)
    entropies = np.array([c.entropy for c in suite])
    return CoverageMetrics(
        entropy_decades=float(np.log10(entropies.max() / entropies.min()))
        if entropies.min() > 0
        else float("inf"),
        resolution_count=len({(c.width, c.height) for c in suite}),
        mean_gap=float(nearest.mean()),
        max_gap=float(nearest.max()),
    )


def compare_suites(
    suites: Dict[str, Sequence[VideoCategory]],
    target: Sequence[VideoCategory],
) -> Dict[str, CoverageMetrics]:
    """Coverage metrics for several suites against one target corpus."""
    return {name: coverage_metrics(cats, target) for name, cats in suites.items()}
