"""Raw video substrate: frames, color conversion, synthesis, I/O, entropy.

Everything in :mod:`repro` operates on planar YUV 4:2:0 video, the format
used throughout commercial video sharing infrastructures (Section 2.1 of the
paper).  :class:`~repro.video.frame.Frame` holds one picture as three numpy
planes; :class:`~repro.video.video.Video` is an immutable sequence of frames
plus timing metadata.
"""

from repro.video.color import rgb_to_yuv420, yuv420_to_rgb
from repro.video.denoise import denoise_video
from repro.video.frame import Frame
from repro.video.video import Video

__all__ = ["Frame", "Video", "denoise_video", "rgb_to_yuv420", "yuv420_to_rgb"]
