"""Raw video serialization in a Y4M-style container.

The format mirrors YUV4MPEG2: a text header carrying geometry and frame
rate, then one ``FRAME`` record per picture with the planar Y, U, V bytes.
It exists so examples can persist synthesized clips and so the test suite
can round-trip videos through disk.
"""

from __future__ import annotations

import io
from fractions import Fraction
from pathlib import Path
from typing import BinaryIO, Union

import numpy as np

from repro.video.frame import Frame
from repro.video.video import Video

__all__ = ["write_y4m", "read_y4m", "save_video", "load_video"]

_MAGIC = b"YUV4MPEG2"


def _fps_to_fraction(fps: float) -> Fraction:
    """Represent an fps value exactly enough for a header (NTSC-aware)."""
    frac = Fraction(fps).limit_denominator(1001)
    if frac <= 0:
        raise ValueError(f"fps must be positive, got {fps}")
    return frac


def write_y4m(video: Video, stream: BinaryIO) -> int:
    """Write ``video`` to ``stream``; returns the number of bytes written."""
    frac = _fps_to_fraction(video.fps)
    header = (
        f"{_MAGIC.decode()} W{video.width} H{video.height} "
        f"F{frac.numerator}:{frac.denominator} Ip A1:1 C420\n"
    ).encode()
    written = stream.write(header)
    for frame in video:
        written += stream.write(b"FRAME\n")
        for plane in frame.planes():
            written += stream.write(plane.tobytes())
    return written


def read_y4m(stream: BinaryIO, name: str = "") -> Video:
    """Parse a Y4M stream written by :func:`write_y4m`."""
    header = stream.readline()
    if not header.startswith(_MAGIC):
        raise ValueError("not a YUV4MPEG2 stream")
    width = height = 0
    fps = 0.0
    for token in header.split()[1:]:
        tag, value = token[:1], token[1:]
        if tag == b"W":
            width = int(value)
        elif tag == b"H":
            height = int(value)
        elif tag == b"F":
            num, den = value.split(b":")
            fps = int(num) / int(den)
        elif tag == b"C" and value not in (b"420", b"420jpeg", b"420mpeg2"):
            raise ValueError(f"unsupported chroma mode {value!r}")
    if width <= 0 or height <= 0 or fps <= 0:
        raise ValueError(f"malformed Y4M header: {header!r}")
    y_size = width * height
    c_size = (width // 2) * (height // 2)
    frames = []
    while True:
        marker = stream.readline()
        if not marker:
            break
        if not marker.startswith(b"FRAME"):
            raise ValueError(f"expected FRAME record, got {marker!r}")
        raw = stream.read(y_size + 2 * c_size)
        if len(raw) != y_size + 2 * c_size:
            raise ValueError("truncated frame payload")
        y = np.frombuffer(raw, dtype=np.uint8, count=y_size).reshape(height, width)
        u = np.frombuffer(raw, dtype=np.uint8, count=c_size, offset=y_size)
        v = np.frombuffer(raw, dtype=np.uint8, count=c_size, offset=y_size + c_size)
        frames.append(
            Frame(
                y.copy(),
                u.reshape(height // 2, width // 2).copy(),
                v.reshape(height // 2, width // 2).copy(),
            )
        )
    if not frames:
        raise ValueError("Y4M stream contains no frames")
    return Video(frames, fps=fps, name=name)


def save_video(video: Video, path: Union[str, Path]) -> int:
    """Write ``video`` to ``path`` in Y4M format; returns bytes written."""
    path = Path(path)
    with path.open("wb") as handle:
        return write_y4m(video, handle)


def load_video(path: Union[str, Path]) -> Video:
    """Read a Y4M file; the video is named after the file stem."""
    path = Path(path)
    with path.open("rb") as handle:
        return read_y4m(io.BufferedReader(handle), name=path.stem)
