"""A raw video: an ordered sequence of frames plus timing metadata.

``Video`` is the unit every transcoder in :mod:`repro.encoders` consumes and
produces, and the unit all of the paper's normalized metrics are defined
over: bitrate in bits/pixel/second and speed in pixels/second both divide by
``Video.pixels`` (Section 2.3).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.video.frame import Frame

__all__ = ["Video"]


class Video:
    """An immutable sequence of equally sized YUV 4:2:0 frames.

    Args:
        frames: The pictures, in display order.  All must share a resolution.
        fps: Frames per second; must be positive.
        name: Optional human-readable label (e.g. the vbench video name).
        nominal_resolution: The resolution this clip *stands for*.  The
            benchmark synthesizes stand-in clips at a reduced scale so a
            pure-Python codec stays tractable; ``nominal_resolution`` records
            the category resolution (e.g. 1920x1080) the clip represents.
            Defaults to the actual frame resolution.
    """

    def __init__(
        self,
        frames: Iterable[Frame],
        fps: float,
        name: str = "",
        nominal_resolution: Optional[Tuple[int, int]] = None,
    ) -> None:
        self._frames: List[Frame] = list(frames)
        if not self._frames:
            raise ValueError("a video needs at least one frame")
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        first = self._frames[0].resolution
        for i, frame in enumerate(self._frames):
            if frame.resolution != first:
                raise ValueError(
                    f"frame {i} has resolution {frame.resolution}, expected {first}"
                )
        self._fps = float(fps)
        self.name = name
        self._nominal = nominal_resolution or first

    # -- basic properties ----------------------------------------------------

    @property
    def fps(self) -> float:
        """Frames per second."""
        return self._fps

    @property
    def frames(self) -> List[Frame]:
        """The frames, in display order (the list itself is a copy)."""
        return list(self._frames)

    @property
    def width(self) -> int:
        return self._frames[0].width

    @property
    def height(self) -> int:
        return self._frames[0].height

    @property
    def resolution(self) -> Tuple[int, int]:
        """Actual ``(width, height)`` of the stored frames."""
        return self._frames[0].resolution

    @property
    def nominal_resolution(self) -> Tuple[int, int]:
        """The resolution this clip represents in its corpus category."""
        return self._nominal

    @property
    def nominal_pixels(self) -> int:
        """Pixels per frame at the nominal resolution."""
        return self._nominal[0] * self._nominal[1]

    @property
    def frame_pixels(self) -> int:
        """Luma pixels per stored frame."""
        return self._frames[0].pixels

    @property
    def pixels(self) -> int:
        """Total luma pixels across all stored frames."""
        return self.frame_pixels * len(self._frames)

    @property
    def duration(self) -> float:
        """Length in seconds."""
        return len(self._frames) / self._fps

    @property
    def pixel_rate(self) -> float:
        """Pixels per second of playback (frame_pixels * fps)."""
        return self.frame_pixels * self._fps

    @property
    def nominal_pixel_rate(self) -> float:
        """Pixels per second at the nominal resolution."""
        return self.nominal_pixels * self._fps

    # -- sequence protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self._frames)

    def __getitem__(self, index):
        if isinstance(index, slice):
            sub = self._frames[index]
            if not sub:
                raise ValueError("slice would produce an empty video")
            return Video(sub, self._fps, self.name, self._nominal)
        return self._frames[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Video):
            return NotImplemented
        return (
            self._fps == other._fps
            and len(self) == len(other)
            and all(a == b for a, b in zip(self._frames, other._frames))
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Video({self.width}x{self.height} @ {self._fps:g}fps, "
            f"{len(self._frames)} frames{label})"
        )

    # -- derived videos ---------------------------------------------------------

    def with_name(self, name: str) -> "Video":
        """Return the same video relabelled."""
        return Video(self._frames, self._fps, name, self._nominal)

    def with_nominal_resolution(self, width: int, height: int) -> "Video":
        """Return the same video representing a different nominal resolution."""
        return Video(self._frames, self._fps, self.name, (width, height))

    def chunk(self, seconds: float) -> List["Video"]:
        """Split into non-overlapping chunks of at most ``seconds`` each.

        vbench videos are 5-second chunks of full uploads; the selection
        pipeline picks the chunk whose bitrate best matches the whole video
        (Section 4.1).
        """
        if seconds <= 0:
            raise ValueError(f"chunk length must be positive, got {seconds}")
        per_chunk = max(1, int(round(seconds * self._fps)))
        chunks = []
        for start in range(0, len(self._frames), per_chunk):
            frames = self._frames[start : start + per_chunk]
            chunks.append(Video(frames, self._fps, self.name, self._nominal))
        return chunks

    def mean_luma(self) -> float:
        """Average luma value across all frames (a cheap content statistic)."""
        return float(np.mean([frame.y.mean() for frame in self._frames]))

    def motion_profile(self) -> np.ndarray:
        """Per-transition mean absolute luma difference.

        A length ``len(self) - 1`` array; high values indicate motion or
        scene cuts.  Useful for content characterization and for tests that
        assert the synthesizers produce the advertised motion classes.
        """
        if len(self._frames) < 2:
            return np.zeros(0)
        return np.array(
            [
                self._frames[i].mean_abs_diff(self._frames[i + 1])
                for i in range(len(self._frames) - 1)
            ]
        )
