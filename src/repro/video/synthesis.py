"""Procedural video synthesis: stand-ins for the commercial corpus.

The paper selects real YouTube uploads; offline we synthesize clips whose
*content class* spans the same range the paper characterizes (Figure 4):
from still slideshows (entropy < 1 bit/pixel/s) to high-motion sports with
frequent scene changes (entropy > 10).  Entropy here is an emergent property:
it is measured by actually encoding the clip at constant quality
(:mod:`repro.video.entropy`), exactly as the paper measures it.

Each generator is deterministic given its seed.  The knobs that drive
measured entropy are:

* texture detail (``detail``) -- high-frequency spatial content survives
  quantization and costs bits;
* motion (pan speed, sprite count) -- motion estimation residuals grow with
  motion magnitude and incoherence;
* temporal noise (``noise``) -- film grain / sensor noise is incompressible;
* scene cuts -- force intra frames, the most expensive frame type.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np
from scipy import ndimage

from repro.video.frame import Frame
from repro.video.video import Video

__all__ = [
    "CONTENT_CLASSES",
    "synthesize",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _value_noise(
    rng: np.random.Generator,
    height: int,
    width: int,
    cell: int,
    low: float = 0.0,
    high: float = 255.0,
) -> np.ndarray:
    """Smooth 2-D value noise: a coarse random grid bilinearly upsampled.

    ``cell`` is the correlation length in pixels; small cells give busy,
    detailed textures, large cells give smooth gradients.
    """
    cell = max(1, int(cell))
    grid_h = max(2, -(-height // cell) + 1)
    grid_w = max(2, -(-width // cell) + 1)
    coarse = rng.uniform(low, high, size=(grid_h, grid_w))
    zoomed = ndimage.zoom(coarse, (height / grid_h, width / grid_w), order=1)
    return zoomed[:height, :width]


def _frac_window(
    texture: np.ndarray, oy: float, ox: float, height: int, width: int
) -> np.ndarray:
    """Sample a ``height x width`` window at a fractional offset.

    Bilinear sampling: sub-pixel camera motion is what produces the small
    prediction residuals real panning footage has (integer pans would be
    motion-compensated for free).
    """
    iy, fy = int(oy), oy - int(oy)
    ix, fx = int(ox), ox - int(ox)
    a = texture[iy : iy + height, ix : ix + width]
    b = texture[iy : iy + height, ix + 1 : ix + 1 + width]
    c = texture[iy + 1 : iy + 1 + height, ix : ix + width]
    d = texture[iy + 1 : iy + 1 + height, ix + 1 : ix + 1 + width]
    return (
        (1 - fy) * (1 - fx) * a
        + (1 - fy) * fx * b
        + fy * (1 - fx) * c
        + fy * fx * d
    )


def _finalize(
    luma_frames: List[np.ndarray],
    chroma_u: List[np.ndarray],
    chroma_v: List[np.ndarray],
    fps: float,
    name: str,
) -> Video:
    frames = [
        Frame.from_planes(y, u, v)
        for y, u, v in zip(luma_frames, chroma_u, chroma_v)
    ]
    return Video(frames, fps=fps, name=name)


def _flat_chroma(height: int, width: int, u: float, v: float, n: int):
    cu = [np.full((height // 2, width // 2), u) for _ in range(n)]
    cv = [np.full((height // 2, width // 2), v) for _ in range(n)]
    return cu, cv


def _check_geometry(width: int, height: int, frames: int) -> None:
    if width % 2 or height % 2:
        raise ValueError(f"dimensions must be even, got {width}x{height}")
    if width < 16 or height < 16:
        raise ValueError(f"need at least 16x16 pixels, got {width}x{height}")
    if frames < 1:
        raise ValueError(f"need at least one frame, got {frames}")


# ---------------------------------------------------------------------------
# Content classes
# ---------------------------------------------------------------------------


def slideshow(
    width: int,
    height: int,
    frames: int,
    fps: float,
    seed: int = 0,
    slide_seconds: float = 2.0,
    name: str = "slideshow",
) -> Video:
    """Still slides with hard cuts: the lowest-entropy class.

    Models presentations and photo slideshows ("presentation" in Table 2,
    entropy ~0.2 bit/px/s): every frame within a slide is identical, so
    inter frames are pure skip blocks and nearly free.
    """
    _check_geometry(width, height, frames)
    rng = _rng(seed)
    per_slide = max(1, int(round(slide_seconds * fps)))
    n_slides = -(-frames // per_slide)
    slides = []
    for _ in range(n_slides):
        bg = np.full((height, width), rng.uniform(170, 235))
        # Title bar and a few text-like stripes of fine-grained noise.
        slide = bg.copy()
        bar_h = max(2, height // 8)
        slide[:bar_h, :] = rng.uniform(40, 90)
        n_lines = int(rng.integers(3, 7))
        for line in range(n_lines):
            y0 = bar_h + 2 + line * max(2, (height - bar_h) // (n_lines + 1))
            if y0 + 2 >= height:
                break
            text_w = int(width * rng.uniform(0.4, 0.9))
            slide[y0 : y0 + 2, 4 : 4 + text_w] = rng.uniform(
                20, 70, size=(min(2, height - y0), text_w)
            )
        slides.append(slide)
    luma = [slides[min(i // per_slide, n_slides - 1)] for i in range(frames)]
    cu, cv = _flat_chroma(height, width, 128.0, 122.0, frames)
    return _finalize(luma, cu, cv, fps, name)


def screencast(
    width: int,
    height: int,
    frames: int,
    fps: float,
    seed: int = 0,
    activity: float = 0.08,
    name: str = "screencast",
) -> Video:
    """Desktop capture: mostly static UI with a small active region.

    Models the "desktop" vbench video (720p, entropy 0.2): a static
    background with sharp edges, a moving cursor, and occasional localized
    updates (typing / scrolling) covering ``activity`` of the frame area.
    """
    _check_geometry(width, height, frames)
    rng = _rng(seed)
    desktop = np.full((height, width), 210.0)
    # Window chrome: sharp rectangles, high-contrast edges.
    for _ in range(4):
        x0 = int(rng.integers(0, max(1, width - width // 3)))
        y0 = int(rng.integers(0, max(1, height - height // 3)))
        w = int(rng.integers(width // 4, width // 2))
        h = int(rng.integers(height // 4, height // 2))
        desktop[y0 : y0 + h, x0 : x0 + w] = rng.uniform(120, 250)
        desktop[y0 : min(y0 + 2, height), x0 : x0 + w] = 60.0
    active_h = max(4, int(height * math.sqrt(activity)))
    active_w = max(4, int(width * math.sqrt(activity)))
    ax = int(rng.integers(0, max(1, width - active_w)))
    ay = int(rng.integers(0, max(1, height - active_h)))
    # Pre-render the text lines once: on screen they are static pixels,
    # and only *new* lines cost bits (re-sampling them per frame would be
    # flicker, which no real screen capture has).
    max_lines = max(1, active_h // 3)
    text_lines = rng.uniform(30, 80, size=(max_lines, active_w))
    typing_cadence = max(2, int(round(fps / 5.0)))  # a new line every ~200ms
    luma = []
    for i in range(frames):
        frame = desktop.copy()
        lines_shown = 1 + min(i // typing_cadence, max_lines - 1)
        for line in range(lines_shown):
            y0 = ay + line * 3
            if y0 + 1 >= ay + active_h:
                break
            frame[y0 : y0 + 1, ax : ax + active_w] = text_lines[line]
        # Cursor blink (4-frame cadence).
        cx = ax + (lines_shown * 7) % max(1, active_w - 2)
        cy = ay + lines_shown * 3
        if cy + 3 < height and (i // 4) % 2 == 0:
            frame[cy : cy + 3, cx : cx + 2] = 0.0
        luma.append(frame)
    cu, cv = _flat_chroma(height, width, 126.0, 130.0, frames)
    return _finalize(luma, cu, cv, fps, name)


def animation(
    width: int,
    height: int,
    frames: int,
    fps: float,
    seed: int = 0,
    n_shapes: int = 4,
    speed: float = 0.5,
    name: str = "animation",
) -> Video:
    """Cartoon animation: flat-shaded shapes in smooth motion.

    Models animated content ("bike", "funny"): large flat regions compress
    well, but continuous motion keeps inter frames from degenerating to
    skips.  Entropy lands in the 1-3 bit/px/s band.
    """
    _check_geometry(width, height, frames)
    rng = _rng(seed)
    bg = _value_noise(rng, height, width, cell=max(width, height) // 2, low=90, high=180)
    shapes = []
    for _ in range(n_shapes):
        shapes.append(
            {
                "x": rng.uniform(0, width),
                "y": rng.uniform(0, height),
                "dx": rng.uniform(-speed, speed) * 2,
                "dy": rng.uniform(-speed, speed) * 2,
                "r": rng.uniform(min(width, height) / 14, min(width, height) / 7),
                "luma": rng.uniform(30, 230),
            }
        )
    yy, xx = np.mgrid[0:height, 0:width]
    luma = []
    for i in range(frames):
        frame = bg.copy()
        for shape in shapes:
            cx = (shape["x"] + shape["dx"] * i) % width
            cy = (shape["y"] + shape["dy"] * i) % height
            mask = (xx - cx) ** 2 + (yy - cy) ** 2 <= shape["r"] ** 2
            frame[mask] = shape["luma"]
        luma.append(frame)
    cu = [
        np.full((height // 2, width // 2), 120.0 + 10 * math.sin(i / 7))
        for i in range(frames)
    ]
    cv = [
        np.full((height // 2, width // 2), 132.0 + 8 * math.cos(i / 9))
        for i in range(frames)
    ]
    return _finalize(luma, cu, cv, fps, name)


def natural(
    width: int,
    height: int,
    frames: int,
    fps: float,
    seed: int = 0,
    detail: float = 0.5,
    pan: float = 0.8,
    noise: float = 0.8,
    name: str = "natural",
) -> Video:
    """Natural camera footage: textured scene, slow pan, sensor noise.

    Models talking-head and scenery videos ("girl", "house", "landscape").
    ``detail`` in [0, 1] sets texture busyness, ``pan`` the camera speed in
    px/frame, ``noise`` the per-frame grain sigma.
    """
    _check_geometry(width, height, frames)
    rng = _rng(seed)
    margin = int(abs(pan) * frames) + 8
    tex_h, tex_w = height + margin, width + margin
    cell_fine = max(2, int((1.0 - detail) * 14) + 2)
    texture = 0.6 * _value_noise(rng, tex_h, tex_w, cell=max(tex_h, tex_w) // 3)
    texture += 0.4 * _value_noise(rng, tex_h, tex_w, cell=cell_fine)
    tex_u = _value_noise(rng, tex_h, tex_w, cell=max(tex_h, tex_w) // 4, low=100, high=156)
    tex_v = _value_noise(rng, tex_h, tex_w, cell=max(tex_h, tex_w) // 4, low=108, high=148)
    luma, cu, cv = [], [], []
    for i in range(frames):
        # Fractional camera pan: sub-pixel motion leaves real residuals.
        ox = abs(pan) * i
        oy = abs(pan) * i * 0.37
        window = _frac_window(texture, oy, ox, height, width)
        grain = rng.normal(0.0, noise, size=(height, width)) if noise > 0 else 0.0
        luma.append(window + grain)
        wu = _frac_window(tex_u, oy, ox, height, width)
        wv = _frac_window(tex_v, oy, ox, height, width)
        cu.append(wu.reshape(height // 2, 2, width // 2, 2).mean(axis=(1, 3)))
        cv.append(wv.reshape(height // 2, 2, width // 2, 2).mean(axis=(1, 3)))
    return _finalize(luma, cu, cv, fps, name)


def gaming(
    width: int,
    height: int,
    frames: int,
    fps: float,
    seed: int = 0,
    speed: float = 2.5,
    noise: float = 1.0,
    name: str = "gaming",
) -> Video:
    """Game capture: fast scrolling world, static HUD, sprite motion.

    Models "game1/2/3": a detailed world texture panning quickly, a static
    high-contrast HUD strip that always codes as skip, and sprites whose
    motion defeats simple translational search.  Entropy ~4-6 bit/px/s.
    """
    _check_geometry(width, height, frames)
    rng = _rng(seed)
    margin = int(speed * frames) + 16
    world = 0.5 * _value_noise(rng, height + margin, width + margin, cell=6)
    world += 0.5 * _value_noise(rng, height + margin, width + margin, cell=24)
    hud_h = max(4, height // 10)
    hud = _value_noise(rng, hud_h, width, cell=3, low=0, high=255)
    sprites = [
        {
            "x": rng.uniform(0, width),
            "y": rng.uniform(hud_h, height),
            "phase": rng.uniform(0, 2 * math.pi),
            "r": max(3, min(width, height) // 16),
            "luma": rng.uniform(0, 255),
        }
        for _ in range(5)
    ]
    yy, xx = np.mgrid[0:height, 0:width]
    luma = []
    for i in range(frames):
        # Fractional scroll: like a real engine camera, not grid-locked.
        frame = _frac_window(world, 0.21 * speed * i, speed * i, height, width)
        for sprite in sprites:
            cx = (sprite["x"] + 10 * math.sin(sprite["phase"] + i / 3)) % width
            cy = hud_h + (
                (sprite["y"] + 6 * math.cos(sprite["phase"] + i / 4)) % (height - hud_h)
            )
            mask = (xx - cx) ** 2 + (yy - cy) ** 2 <= sprite["r"] ** 2
            frame[mask] = sprite["luma"]
        if noise > 0:
            frame = frame + rng.normal(0.0, noise, size=(height, width))
        frame[:hud_h, :] = hud  # the HUD overlay renders on top, noise-free
        luma.append(frame)
    cu = [
        _value_noise(_rng(seed + 1), height // 2, width // 2, cell=8, low=110, high=146)
        for _ in range(frames)
    ]
    cv = [
        _value_noise(_rng(seed + 2), height // 2, width // 2, cell=8, low=112, high=144)
        for _ in range(frames)
    ]
    return _finalize(luma, cu, cv, fps, name)


def sports(
    width: int,
    height: int,
    frames: int,
    fps: float,
    seed: int = 0,
    speed: float = 4.0,
    cut_seconds: float = 1.2,
    noise: float = 1.8,
    name: str = "sports",
) -> Video:
    """High-motion event footage: the highest-entropy class.

    Models "cat", "holi", "cricket", "hall": fast incoherent camera motion,
    heavy crowd texture, per-frame grain, and frequent scene cuts that force
    intra frames.  Entropy > 6 bit/px/s.
    """
    _check_geometry(width, height, frames)
    rng = _rng(seed)
    per_cut = max(2, int(round(cut_seconds * fps)))
    margin = int(speed * per_cut) + 16
    luma, cu, cv = [], [], []
    scene = None
    for i in range(frames):
        if i % per_cut == 0 or scene is None:
            scene = 0.5 * _value_noise(rng, height + margin, width + margin, cell=4)
            scene += 0.5 * _value_noise(rng, height + margin, width + margin, cell=12)
            direction = rng.uniform(-1, 1, size=2)
            norm = float(np.hypot(*direction)) or 1.0
            direction = direction / norm
        j = i % per_cut
        ox = abs(direction[0]) * speed * j
        oy = abs(direction[1]) * speed * j
        window = _frac_window(scene, oy, ox, height, width)
        # Wobble: per-frame jitter makes motion vectors incoherent.
        jitter = rng.normal(0, noise, size=(height, width))
        luma.append(window + jitter)
        cu.append(
            _value_noise(rng, height // 2, width // 2, cell=10, low=104, high=152)
        )
        cv.append(
            _value_noise(rng, height // 2, width // 2, cell=10, low=106, high=150)
        )
    return _finalize(luma, cu, cv, fps, name)


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

CONTENT_CLASSES: Dict[str, Callable[..., Video]] = {
    "slideshow": slideshow,
    "screencast": screencast,
    "animation": animation,
    "natural": natural,
    "gaming": gaming,
    "sports": sports,
}


def synthesize(
    content: str,
    width: int,
    height: int,
    frames: int,
    fps: float,
    seed: int = 0,
    name: Optional[str] = None,
    **params,
) -> Video:
    """Generate a clip of the named content class.

    Args:
        content: One of :data:`CONTENT_CLASSES`.
        width, height: Actual (stored) resolution; must be even, >= 16.
        frames: Number of frames.
        fps: Frame rate.
        seed: Deterministic seed.
        name: Optional clip name; defaults to the content class.
        **params: Class-specific knobs (see the individual generators).

    Returns:
        A :class:`~repro.video.video.Video`.
    """
    try:
        generator = CONTENT_CLASSES[content]
    except KeyError:
        raise ValueError(
            f"unknown content class {content!r}; expected one of "
            f"{sorted(CONTENT_CLASSES)}"
        ) from None
    return generator(
        width, height, frames, fps, seed=seed, name=name or content, **params
    )
