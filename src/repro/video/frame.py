"""A single planar YUV 4:2:0 video frame.

Video codecs operate in the YUV color space rather than RGB because human
vision is more sensitive to luminosity (luma, the Y plane) than to color
(chroma, the U/Cb and V/Cr planes).  4:2:0 chroma subsampling stores one
chroma sample per 2x2 luma block, so the chroma planes have half the width
and half the height of the luma plane (Section 2.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Frame"]


def _validate_plane(name: str, plane: np.ndarray) -> np.ndarray:
    """Check that ``plane`` is a 2-D uint8 array and return it C-contiguous."""
    if not isinstance(plane, np.ndarray):
        raise TypeError(f"{name} plane must be a numpy array, got {type(plane)!r}")
    if plane.ndim != 2:
        raise ValueError(f"{name} plane must be 2-D, got shape {plane.shape}")
    if plane.dtype != np.uint8:
        raise TypeError(f"{name} plane must be uint8, got {plane.dtype}")
    if plane.size == 0:
        raise ValueError(f"{name} plane must be non-empty")
    return np.ascontiguousarray(plane)


@dataclass(frozen=True)
class Frame:
    """One planar YUV 4:2:0 picture.

    Attributes:
        y: Luma plane, shape ``(height, width)``, dtype uint8.
        u: Blue-difference chroma plane, shape ``(height // 2, width // 2)``.
        v: Red-difference chroma plane, shape ``(height // 2, width // 2)``.

    Frames require even width and height so the 4:2:0 subsampling is exact.
    Instances are logically immutable: planes are stored with the writeable
    flag cleared, and mutating helpers return new frames.
    """

    y: np.ndarray
    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        y = _validate_plane("Y", self.y)
        u = _validate_plane("U", self.u)
        v = _validate_plane("V", self.v)
        height, width = y.shape
        if height % 2 or width % 2:
            raise ValueError(
                f"4:2:0 frames need even dimensions, got {width}x{height}"
            )
        expected = (height // 2, width // 2)
        if u.shape != expected or v.shape != expected:
            raise ValueError(
                f"chroma planes must be {expected} for a {width}x{height} "
                f"frame, got U={u.shape} V={v.shape}"
            )
        for plane in (y, u, v):
            plane.setflags(write=False)
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "u", u)
        object.__setattr__(self, "v", v)

    # -- construction -----------------------------------------------------

    @classmethod
    def blank(cls, width: int, height: int, luma: int = 16, chroma: int = 128) -> "Frame":
        """Create a uniform frame (default: black in video range)."""
        if width <= 0 or height <= 0:
            raise ValueError(f"frame dimensions must be positive, got {width}x{height}")
        if width % 2 or height % 2:
            raise ValueError(f"frame dimensions must be even, got {width}x{height}")
        return cls(
            y=np.full((height, width), luma, dtype=np.uint8),
            u=np.full((height // 2, width // 2), chroma, dtype=np.uint8),
            v=np.full((height // 2, width // 2), chroma, dtype=np.uint8),
        )

    @classmethod
    def from_planes(cls, y: np.ndarray, u: np.ndarray, v: np.ndarray) -> "Frame":
        """Build a frame from float or int planes, clipping to [0, 255]."""
        def _prep(p: np.ndarray) -> np.ndarray:
            arr = np.asarray(p)
            if arr.dtype != np.uint8:
                arr = np.clip(np.rint(arr), 0, 255).astype(np.uint8)
            return arr

        return cls(_prep(y), _prep(u), _prep(v))

    # -- geometry ----------------------------------------------------------

    @property
    def width(self) -> int:
        """Luma width in pixels."""
        return self.y.shape[1]

    @property
    def height(self) -> int:
        """Luma height in pixels."""
        return self.y.shape[0]

    @property
    def pixels(self) -> int:
        """Number of luma pixels (the paper's normalization unit)."""
        return self.width * self.height

    @property
    def resolution(self) -> tuple:
        """``(width, height)`` tuple."""
        return (self.width, self.height)

    # -- helpers -----------------------------------------------------------

    def planes(self) -> tuple:
        """Return ``(y, u, v)``."""
        return (self.y, self.u, self.v)

    def copy(self) -> "Frame":
        """Deep-copy the frame (new, independent plane buffers)."""
        return Frame(self.y.copy(), self.u.copy(), self.v.copy())

    def crop(self, width: int, height: int) -> "Frame":
        """Crop to the top-left ``width x height`` region (both even)."""
        if width > self.width or height > self.height:
            raise ValueError(
                f"cannot crop {self.width}x{self.height} frame to {width}x{height}"
            )
        if width % 2 or height % 2:
            raise ValueError(f"crop dimensions must be even, got {width}x{height}")
        return Frame(
            self.y[:height, :width].copy(),
            self.u[: height // 2, : width // 2].copy(),
            self.v[: height // 2, : width // 2].copy(),
        )

    def pad_to_multiple(self, multiple: int) -> "Frame":
        """Edge-pad the frame so both luma dimensions divide ``multiple``.

        Codecs require frame dimensions that are a whole number of
        macroblocks; encoders pad with edge replication, which compresses
        essentially for free.
        """
        if multiple <= 0 or multiple % 2:
            raise ValueError(f"pad multiple must be positive and even, got {multiple}")
        new_w = -(-self.width // multiple) * multiple
        new_h = -(-self.height // multiple) * multiple
        if (new_w, new_h) == (self.width, self.height):
            return self
        pad_y = ((0, new_h - self.height), (0, new_w - self.width))
        pad_c = ((0, (new_h - self.height) // 2), (0, (new_w - self.width) // 2))
        return Frame(
            np.pad(self.y, pad_y, mode="edge"),
            np.pad(self.u, pad_c, mode="edge"),
            np.pad(self.v, pad_c, mode="edge"),
        )

    def mean_abs_diff(self, other: "Frame") -> float:
        """Mean absolute luma difference against another frame.

        Used for scene-cut detection in the encoder: a large jump in luma
        content signals that inter prediction will fail and an intra frame
        is warranted.
        """
        if other.resolution != self.resolution:
            raise ValueError(
                f"frame size mismatch: {self.resolution} vs {other.resolution}"
            )
        return float(
            np.mean(np.abs(self.y.astype(np.int16) - other.y.astype(np.int16)))
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        return (
            np.array_equal(self.y, other.y)
            and np.array_equal(self.u, other.u)
            and np.array_equal(self.v, other.v)
        )

    def __hash__(self) -> int:  # pragma: no cover - frames are not dict keys
        return hash((self.width, self.height, self.y.tobytes()[:64]))

    def __repr__(self) -> str:
        return f"Frame({self.width}x{self.height})"
