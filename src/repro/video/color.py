"""Color conversion between RGB and planar YUV 4:2:0 (BT.601, full range).

Encoders work in YUV because it separates luminosity from color, letting the
codec spend more bits on the luma plane that human vision is most sensitive
to, and subsample the chroma planes 2x in each dimension (Section 2.1).
"""

from __future__ import annotations

import numpy as np

from repro.video.frame import Frame

__all__ = [
    "rgb_to_yuv420",
    "yuv420_to_rgb",
    "subsample_chroma",
    "upsample_chroma",
]

# BT.601 full-range analog coefficients.
_KR, _KG, _KB = 0.299, 0.587, 0.114


def rgb_to_yuv420(rgb: np.ndarray) -> Frame:
    """Convert an ``(H, W, 3)`` RGB image to a 4:2:0 :class:`Frame`.

    Accepts uint8 or float input; floats are interpreted on the 0..255
    scale.  Height and width must be even.
    """
    arr = np.asarray(rgb, dtype=np.float64)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) RGB input, got shape {arr.shape}")
    height, width = arr.shape[:2]
    if height % 2 or width % 2:
        raise ValueError(f"RGB image must have even dimensions, got {width}x{height}")
    r, g, b = arr[..., 0], arr[..., 1], arr[..., 2]
    y = _KR * r + _KG * g + _KB * b
    u = (b - y) / (2.0 * (1.0 - _KB)) + 128.0
    v = (r - y) / (2.0 * (1.0 - _KR)) + 128.0
    return Frame.from_planes(y, subsample_chroma(u), subsample_chroma(v))


def yuv420_to_rgb(frame: Frame) -> np.ndarray:
    """Convert a :class:`Frame` back to an ``(H, W, 3)`` uint8 RGB image."""
    y = frame.y.astype(np.float64)
    u = upsample_chroma(frame.u.astype(np.float64)) - 128.0
    v = upsample_chroma(frame.v.astype(np.float64)) - 128.0
    r = y + 2.0 * (1.0 - _KR) * v
    b = y + 2.0 * (1.0 - _KB) * u
    g = (y - _KR * r - _KB * b) / _KG
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(np.rint(rgb), 0, 255).astype(np.uint8)


def subsample_chroma(plane: np.ndarray) -> np.ndarray:
    """2x2 box-filter a full-resolution chroma plane down to 4:2:0.

    Averaging each 2x2 pixel block is the textbook chroma-subsampling filter;
    it is what makes 4:2:0 lossy even before quantization.
    """
    arr = np.asarray(plane, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"chroma plane must be 2-D, got shape {arr.shape}")
    height, width = arr.shape
    if height % 2 or width % 2:
        raise ValueError(f"chroma plane needs even dimensions, got {width}x{height}")
    return arr.reshape(height // 2, 2, width // 2, 2).mean(axis=(1, 3))


def upsample_chroma(plane: np.ndarray) -> np.ndarray:
    """Nearest-neighbour upsample a 4:2:0 chroma plane to full resolution."""
    arr = np.asarray(plane, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"chroma plane must be 2-D, got shape {arr.shape}")
    return np.repeat(np.repeat(arr, 2, axis=0), 2, axis=1)
