"""The paper's entropy measure: bits/pixel/second at constant quality.

Section 4.1: "we use bits/pixel/second when encoded using libx264 at
visually lossless quality (Constant Rate Factor CRF 18) as a measure for
video entropy" -- when an encoder is told to sustain a fixed quality it
spends exactly as many bits as the content demands, so the resulting
normalized bitrate reflects the video's inherent information content.

We measure with our x264-class encoder at the same CRF-18 operating
point, over the *steady-state* frames: the paper's clips are 5 seconds
long, so the one-time intra-refresh cost of the first frame is noise
there; our reduced-scale stand-ins are ~1 second, where it would dominate,
so the measure excludes the leading I frame (documented in DESIGN.md).

(Imports are deferred to avoid a package cycle: ``codec`` depends on
``video``.)
"""

from __future__ import annotations

from repro.video.video import Video

__all__ = ["measure_entropy"]

#: CRF 18 is the "visually lossless" constant-quality point (Section 4.1).
ENTROPY_CRF = 18


def measure_entropy(video: Video, preset: str = "medium") -> float:
    """Entropy of ``video`` in bits/pixel/second (steady-state CRF-18 rate)."""
    from repro.codec.encoder import encode

    result = encode(video, config=preset, crf=ENTROPY_CRF)
    stats = result.stats
    if len(stats) > 1:
        bits = sum(s.bits for s in stats[1:])
        seconds = (len(stats) - 1) / video.fps
    else:
        bits = sum(s.bits for s in stats)
        seconds = video.duration
    return bits / seconds / video.frame_pixels
