"""Denoising prefilter: trading grain for compressibility.

Section 2.1 of the paper lists denoising among the optional encoder-side
operations "applied to increase video compressability by reducing high
frequency components" (citing Kokaram et al.).  This module implements a
motion-safe spatio-temporal filter:

* spatial: a light Gaussian on each plane (kills sensor grain);
* temporal: blend each frame toward its predecessor only where the pixel
  difference is small (static areas), so real motion is never smeared.

The filter is encoder-side only — it changes the *input*, not the
bitstream format — which is exactly how production transcoding pipelines
deploy it.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.video.frame import Frame
from repro.video.video import Video

__all__ = ["denoise_video"]


def denoise_plane(
    plane: np.ndarray,
    previous: "np.ndarray | None",
    spatial_sigma: float,
    temporal_strength: float,
    motion_threshold: float,
) -> np.ndarray:
    """Filter one plane; ``previous`` is the already-filtered predecessor."""
    out = np.asarray(plane, dtype=np.float64)
    if spatial_sigma > 0:
        out = ndimage.gaussian_filter(out, sigma=spatial_sigma, mode="reflect")
    if previous is not None and temporal_strength > 0:
        prev = np.asarray(previous, dtype=np.float64)
        if prev.shape != out.shape:
            raise ValueError(
                f"plane shape changed between frames: {prev.shape} vs {out.shape}"
            )
        static = np.abs(out - prev) < motion_threshold
        blended = (1.0 - temporal_strength) * out + temporal_strength * prev
        out = np.where(static, blended, out)
    return out


def denoise_video(
    video: Video,
    spatial_sigma: float = 0.6,
    temporal_strength: float = 0.5,
    motion_threshold: float = 6.0,
) -> Video:
    """Denoise a clip ahead of encoding.

    Args:
        video: Input clip.
        spatial_sigma: Gaussian sigma in pixels (0 disables the spatial
            stage).
        temporal_strength: Blend weight toward the previous filtered frame
            on static pixels, in [0, 1) (0 disables the temporal stage).
        motion_threshold: Luma difference above which a pixel is treated
            as moving and left untouched by the temporal stage.

    Returns:
        A new :class:`Video` with the same geometry and timing.
    """
    if spatial_sigma < 0:
        raise ValueError(f"spatial_sigma must be >= 0, got {spatial_sigma}")
    if not 0.0 <= temporal_strength < 1.0:
        raise ValueError(
            f"temporal_strength must be in [0, 1), got {temporal_strength}"
        )
    if motion_threshold <= 0:
        raise ValueError(
            f"motion_threshold must be positive, got {motion_threshold}"
        )
    frames = []
    prev_planes = (None, None, None)
    for frame in video:
        planes = []
        for plane, prev in zip(frame.planes(), prev_planes):
            planes.append(
                denoise_plane(
                    plane, prev, spatial_sigma, temporal_strength,
                    motion_threshold,
                )
            )
        prev_planes = tuple(planes)
        frames.append(Frame.from_planes(*planes))
    return Video(
        frames, video.fps, name=video.name,
        nominal_resolution=video.nominal_resolution,
    )
