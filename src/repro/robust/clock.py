"""A simulated clock: the farm's single source of time.

Everything in :mod:`repro.robust` is deterministic — fault draws come from
seeded RNGs, and *time* comes from this clock rather than the wall.  A
transcode "takes" its modeled ``seconds`` by advancing the clock; a retry
backoff "sleeps" the same way.  Chaos experiments therefore replay
byte-identically under the same seed, and tests can assert on exact
timelines.

The farm simulates N parallel workers on one interpreter thread by
*seeking* the clock to each worker's frontier before running its next job
(see :class:`repro.pipeline.farm.TranscodeFarm`), so time is monotonic
per worker but not globally — the same relaxation a distributed farm's
per-node clocks exhibit.

The traffic simulator (:mod:`repro.traffic`) adds a second use: a global
*event* clock that only ever moves forward.  :meth:`SimClock.advance_to`
provides that contract (a backwards target is a no-op), and
:class:`EventQueue` is the deterministic event heap the simulator pops
in ``(when, sequence)`` order — ties break by insertion order, never by
payload identity, so two runs replay the same schedule byte-for-byte.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, List, Tuple

__all__ = ["EventQueue", "SimClock"]


class SimClock:
    """Simulated seconds since the start of the experiment."""

    def __init__(self, start: float = 0.0) -> None:
        if not math.isfinite(start):
            raise ValueError(f"clock cannot start at a non-finite time, got {start}")
        if start < 0:
            raise ValueError(f"clock cannot start negative, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Spend ``seconds`` of simulated time; returns the new time."""
        if not math.isfinite(seconds):
            raise ValueError(f"cannot advance by a non-finite time, got {seconds}")
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time, got {seconds}")
        self._now += seconds
        return self._now

    def seek(self, when: float) -> float:
        """Jump to absolute time ``when`` (a worker's frontier).

        Backwards jumps are allowed: the farm seeks to each worker's
        frontier before running its next job, and an idle worker's
        frontier lies behind the busiest worker's.  Code that needs a
        globally monotonic clock uses :meth:`advance_to` instead.
        """
        if not math.isfinite(when):
            raise ValueError(f"cannot seek to a non-finite time, got {when}")
        if when < 0:
            raise ValueError(f"cannot seek to negative time, got {when}")
        self._now = float(when)
        return self._now

    def advance_to(self, when: float) -> float:
        """Move forward to absolute time ``when``; never backwards.

        A target at or before ``now`` is a **no-op** (the current time is
        returned unchanged).  This is the event-loop contract: the traffic
        simulator pops events in nondecreasing time order and advances the
        global clock to each one, so a stale target must not rewind time.
        """
        if not math.isfinite(when):
            raise ValueError(f"cannot advance to a non-finite time, got {when}")
        if when > self._now:
            self._now = float(when)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"


class EventQueue:
    """A deterministic min-heap of timestamped events.

    Events pop in nondecreasing ``when`` order; simultaneous events pop in
    insertion order (a monotone sequence number breaks ties, so payloads
    never need to be comparable).  All timestamps must be finite and
    non-negative — a NaN inside a heap silently corrupts its ordering,
    which is exactly the kind of nondeterminism this repo lints against.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = 0

    def schedule(self, when: float, event: Any) -> None:
        """Add ``event`` at absolute simulated time ``when``."""
        if not math.isfinite(when):
            raise ValueError(f"cannot schedule at a non-finite time, got {when}")
        if when < 0:
            raise ValueError(f"cannot schedule at a negative time, got {when}")
        heapq.heappush(self._heap, (float(when), self._seq, event))
        self._seq += 1

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(when, event)`` pair."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        when, _, event = heapq.heappop(self._heap)
        return when, event

    def peek_when(self) -> float:
        """Timestamp of the earliest scheduled event."""
        if not self._heap:
            raise IndexError("peek into an empty EventQueue")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __repr__(self) -> str:
        return f"EventQueue(pending={len(self._heap)})"
