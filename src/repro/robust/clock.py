"""A simulated clock: the farm's single source of time.

Everything in :mod:`repro.robust` is deterministic — fault draws come from
seeded RNGs, and *time* comes from this clock rather than the wall.  A
transcode "takes" its modeled ``seconds`` by advancing the clock; a retry
backoff "sleeps" the same way.  Chaos experiments therefore replay
byte-identically under the same seed, and tests can assert on exact
timelines.

The farm simulates N parallel workers on one interpreter thread by
*seeking* the clock to each worker's frontier before running its next job
(see :class:`repro.pipeline.farm.TranscodeFarm`), so time is monotonic
per worker but not globally — the same relaxation a distributed farm's
per-node clocks exhibit.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """Simulated seconds since the start of the experiment."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start negative, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Spend ``seconds`` of simulated time; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time, got {seconds}")
        self._now += seconds
        return self._now

    def seek(self, when: float) -> float:
        """Jump to absolute time ``when`` (a worker's frontier)."""
        if when < 0:
            raise ValueError(f"cannot seek to negative time, got {when}")
        self._now = float(when)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
