"""Graceful degradation: trade quality for survival, and write it down.

When a backend's circuit opens, retries exhaust, or the deadline budget
shrinks below another attempt, the job does not die — it *degrades*:

1. the configured preset falls to progressively faster presets of the
   same software backend (each rung spends less compute per attempt, so a
   shrinking budget still fits), then
2. the hardware model takes over as the last resort — the paper's own
   trade (Section 5.3): bitrate sacrificed for guaranteed throughput.

Every step down the ladder is recorded as a :class:`DowngradeEvent`, so a
chaos report can say exactly which videos shipped at reduced effort and
why — a silent quality regression is a bug, an audited one is a policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.codec.presets import PRESETS
from repro.encoders.registry import BACKENDS, HARDWARE_BACKENDS, available_backends

__all__ = ["DowngradeEvent", "degradation_ladder"]

#: Default preset each software backend runs when the spec names none
#: (mirrors the registry factories' defaults).
_DEFAULT_PRESETS = {"x264": "medium", "x265": "veryslow", "vp9": "veryslow", "av1": "veryslow"}

#: Fallback presets tried in order once the configured rung fails; each is
#: used only if it is strictly faster than the configured preset.
DEFAULT_PRESET_FALLBACKS = ("medium", "veryfast", "ultrafast")


@dataclass(frozen=True)
class DowngradeEvent:
    """One recorded step down the ladder.

    Attributes:
        job: Name of the video whose transcode degraded.
        from_spec: The rung that was abandoned.
        to_spec: The rung the job fell to.
        reason: Why — ``"breaker-open"``, ``"retries-exhausted"``, or
            ``"deadline"``.
    """

    job: str
    from_spec: str
    to_spec: str
    reason: str


def degradation_ladder(
    spec: str,
    preset_fallbacks: Sequence[str] = DEFAULT_PRESET_FALLBACKS,
    hardware_fallback: Optional[str] = "qsv",
) -> List[str]:
    """The ordered backend specs a job for ``spec`` may fall through.

    The configured spec is always rung 0.  Software backends then fall to
    any ``preset_fallbacks`` strictly faster (earlier in the preset
    ladder) than the configured preset, and finally to
    ``hardware_fallback``.  A hardware spec is its own whole ladder — it
    is already the floor.

    >>> degradation_ladder("x264:veryslow")
    ['x264:veryslow', 'x264:medium', 'x264:veryfast', 'x264:ultrafast', 'qsv']
    """
    name, _, preset_name = spec.partition(":")
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {available_backends()}"
        )
    if name in HARDWARE_BACKENDS:
        if preset_name:
            raise ValueError(f"{name} does not take a preset (got {preset_name!r})")
        return [spec]
    preset_name = preset_name or _DEFAULT_PRESETS.get(name, "medium")
    order = list(PRESETS)  # ultrafast (fastest) .. placebo (slowest)
    if preset_name not in order:
        raise ValueError(
            f"unknown preset {preset_name!r} for backend {name!r}; "
            f"expected one of {sorted(PRESETS)}"
        )
    current = order.index(preset_name)
    ladder = [spec]
    for fallback in preset_fallbacks:
        if fallback not in order:
            raise ValueError(
                f"unknown fallback preset {fallback!r}; "
                f"expected one of {sorted(PRESETS)}"
            )
        if order.index(fallback) < current:
            ladder.append(f"{name}:{fallback}")
    if hardware_fallback is not None:
        hw_name = hardware_fallback.partition(":")[0]
        if hw_name not in HARDWARE_BACKENDS:
            raise ValueError(
                f"hardware fallback must be one of {sorted(HARDWARE_BACKENDS)}, "
                f"got {hardware_fallback!r}"
            )
        ladder.append(hardware_fallback)
    return ladder
