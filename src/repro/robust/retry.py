"""Retry policy with capped exponential backoff, and deadline budgets.

Two rules govern a production transcode job:

* **Retry, but back off.**  Transient faults clear on their own; hammering
  a struggling backend makes them worse.  Delays grow geometrically up to
  a cap, with *deterministic* jitter (a hash of the backend key and the
  attempt number) so two runs of the same chaos experiment sleep the same
  simulated seconds while two different backends still desynchronize.

* **Never blow the deadline on a retry.**  The paper's Live scenario is a
  hard real-time constraint — a transcode that lands after the stream has
  moved on is worthless — so a retry whose backoff alone would exceed the
  remaining budget is not attempted; the job degrades to a faster rung
  instead (:mod:`repro.robust.degrade`).  Batch scenarios (Upload, VOD,
  Popular) get generous budgets scaled from the clip duration.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.core.scenarios import Scenario
from repro.robust.clock import SimClock
from repro.video.video import Video

__all__ = ["DeadlineBudget", "DeadlinePolicy", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attributes:
        max_attempts: Attempts per ladder rung before degrading (>= 1).
        base_delay_s: Backoff before the first retry.
        multiplier: Geometric growth factor per further retry.
        max_delay_s: Backoff cap.
        jitter: Fractional spread: the delay is scaled into
            ``[1 - jitter, 1 + jitter]`` by a stable hash, never by global
            randomness.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"need at least one attempt, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_s(self, failures: int, key: str = "") -> float:
        """Delay before the retry that follows ``failures`` failures.

        ``failures`` is 1-based: the first retry (after one failure) waits
        roughly ``base_delay_s``.  The jitter fraction is
        ``crc32(key | failures)``-derived, so it is reproducible across
        processes (unlike :func:`hash`, which is salted).
        """
        if failures < 1:
            raise ValueError(f"backoff needs >= 1 prior failure, got {failures}")
        raw = min(
            self.base_delay_s * self.multiplier ** (failures - 1),
            self.max_delay_s,
        )
        spread = zlib.crc32(f"{key}|{failures}".encode("utf-8")) % 10_000 / 9_999.0
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * spread)


@dataclass(frozen=True)
class DeadlinePolicy:
    """Per-scenario deadline budgets, scaled from the clip duration.

    Attributes:
        live_factor: Live budget as a multiple of the clip duration; 1.0
            is the paper's real-time constraint (transcode at least as
            fast as the stream plays).
        batch_factor: Budget multiple for the non-realtime scenarios.
        floor_s: Minimum budget, so very short clips keep room for at
            least one attempt.
    """

    live_factor: float = 1.0
    batch_factor: float = 60.0
    floor_s: float = 0.05

    def __post_init__(self) -> None:
        if self.live_factor <= 0 or self.batch_factor <= 0:
            raise ValueError("deadline factors must be positive")
        if self.floor_s < 0:
            raise ValueError(f"floor must be non-negative, got {self.floor_s}")

    def budget_s(self, video: Video, scenario: Scenario) -> float:
        """The deadline budget for transcoding ``video`` under ``scenario``."""
        factor = self.live_factor if scenario.realtime else self.batch_factor
        return max(video.duration * factor, self.floor_s)


class DeadlineBudget:
    """One job's remaining time, measured against the simulated clock.

    Args:
        clock: The farm's clock; the budget starts "now".
        budget_s: Total seconds allowed, or ``None`` for unlimited.
    """

    def __init__(self, clock: SimClock, budget_s: Optional[float] = None) -> None:
        if budget_s is not None and (
            not math.isfinite(budget_s) or budget_s < 0
        ):
            raise ValueError(f"budget must be finite and >= 0, got {budget_s}")
        self._clock = clock
        self._start = clock.now
        self._budget = budget_s

    @property
    def budget_s(self) -> Optional[float]:
        return self._budget

    @property
    def elapsed_s(self) -> float:
        return self._clock.now - self._start

    @property
    def remaining_s(self) -> float:
        if self._budget is None:
            return math.inf
        return self._budget - self.elapsed_s

    @property
    def exceeded(self) -> bool:
        return self.remaining_s < 0

    def allows(self, extra_s: float) -> bool:
        """Whether spending ``extra_s`` more seconds stays inside budget."""
        return extra_s <= self.remaining_s
