"""Seeded fault injection around any :class:`~repro.encoders.base.Transcoder`.

A real transcoding farm sees five failure shapes (Li et al., "Cost-Efficient
and Robust On-Demand Video Stream Transcoding Using Heterogeneous Cloud
Services"; see PAPERS.md):

* **transient crashes** — the worker process dies mid-transcode, wasting
  the compute already spent;
* **stragglers** — the transcode completes but takes a large multiple of
  its nominal time (noisy neighbours, thermal throttling, spot-instance
  contention);
* **corrupted outputs** — the transcode "succeeds" but the bitstream is
  garbage; only a quality check catches it;
* **corrupted streams** — bits of the output bitstream flip in storage or
  transit; the resilient container localizes the damage and the decoder
  conceals the affected frames, so quality degrades instead of vanishing;
* **permanent outages** — a backend (an encoder fleet, a GPU pool) goes
  away and every call fails fast until an operator intervenes.

:class:`FaultyTranscoder` wraps a backend and injects all five from a
seeded RNG, so a chaos experiment is exactly reproducible.  Corruption is
physical, not flagged: the output video's luma is inverted (or its
re-encoded bitstream's bits really are flipped and re-decoded), so the
caller's ``quality_db`` really does collapse and detection has to happen
the way production detects it — by measuring.

This module injects faults per transcode *call*; its fleet-level
counterpart is :mod:`repro.traffic.fleet`, where whole workers crash,
straggle, get preempted, or die in correlated outages under the traffic
simulator — same seeded-substream idiom, one level up the stack.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import FrozenSet, Optional

import numpy as np

from repro.encoders.base import RateSpec, Transcoder, TranscodeResult
from repro.video.frame import Frame
from repro.video.video import Video

__all__ = [
    "BackendOutage",
    "FaultCounts",
    "FaultError",
    "FaultPlan",
    "FaultyTranscoder",
    "TransientFault",
]


class FaultError(RuntimeError):
    """Base class for injected transcoding failures.

    Attributes:
        backend: Key of the backend the fault was injected on.
    """

    def __init__(self, message: str, backend: str) -> None:
        super().__init__(message)
        self.backend = backend


class TransientFault(FaultError):
    """The worker crashed mid-transcode; a retry may well succeed.

    Attributes:
        wasted_seconds: Simulated compute spent before the crash — the
            farm books it as wasted compute.
    """

    def __init__(self, message: str, backend: str, wasted_seconds: float) -> None:
        super().__init__(message, backend)
        self.wasted_seconds = wasted_seconds


class BackendOutage(FaultError):
    """The backend is gone; every call fails fast until it comes back."""


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, how often, from which seed.

    The four rates are drawn from a single uniform per call, so their sum
    must stay at or below 1.  ``dead_backends`` holds backend *keys* (the
    registry specs the farm wraps, e.g. ``"x264:veryslow"``); a dead
    backend raises :class:`BackendOutage` on every call.

    Attributes:
        seed: Root seed; each wrapped backend derives its own independent
            stream from it, so adding a backend does not perturb the
            others' draws.
        crash_rate: Probability a call dies with a :class:`TransientFault`.
        straggler_rate: Probability a call's ``seconds`` are multiplied by
            ``straggler_factor``.
        corrupt_rate: Probability a call returns a corrupted output.
        corrupt_stream_rate: Probability a call's output is round-tripped
            through the repro codec with seeded bit flips in the payload —
            the decoder conceals the damaged frames, so the output is
            degraded rather than destroyed.
        straggler_factor: Slowdown multiple for straggler calls.
        crash_waste: Fraction of the transcode's compute spent before a
            crash (booked as wasted).
        dead_backends: Backend keys that are permanently down.
    """

    seed: int = 0
    crash_rate: float = 0.0
    straggler_rate: float = 0.0
    corrupt_rate: float = 0.0
    corrupt_stream_rate: float = 0.0
    straggler_factor: float = 20.0
    crash_waste: float = 0.5
    dead_backends: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        for name in (
            "crash_rate",
            "straggler_rate",
            "corrupt_rate",
            "corrupt_stream_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        total = (
            self.crash_rate
            + self.straggler_rate
            + self.corrupt_rate
            + self.corrupt_stream_rate
        )
        if total > 1.0:
            raise ValueError(f"fault rates must sum to <= 1, got {total}")
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler factor must be >= 1, got {self.straggler_factor}"
            )
        if not 0.0 <= self.crash_waste <= 1.0:
            raise ValueError(f"crash_waste must be in [0, 1], got {self.crash_waste}")
        object.__setattr__(self, "dead_backends", frozenset(self.dead_backends))

    def rng_for(self, key: str) -> np.random.Generator:
        """A deterministic, backend-independent RNG stream for ``key``."""
        return np.random.default_rng(
            (self.seed, zlib.crc32(key.encode("utf-8")))
        )

    def is_dead(self, key: str) -> bool:
        return key in self.dead_backends


def _corrupt_stream(
    video: Video, rng: np.random.Generator
) -> "tuple[Video, int, int]":
    """Corrupt a video *through its bitstream*: encode, flip bits, decode.

    Unlike :func:`_corrupt`, this exercises the error-resilience path: the
    repro codec's v2 container localizes the flipped bits to individual
    frame packets and the decoder conceals just those frames.  Returns
    ``(decoded video, frames concealed, total frames)``.  Bit positions
    land beyond the container header so the stream stays parseable — a
    destroyed header is the ``corrupt_rate`` failure shape, not this one.
    """
    from repro.codec.bitstream import header_byte_length
    from repro.codec.decoder import Decoder
    from repro.codec.encoder import encode
    from repro.codec.presets import preset

    encoded = encode(video, preset("ultrafast"), crf=18)
    data = bytearray(encoded.bitstream)
    header_len = header_byte_length(bytes(data[:16]))
    n_flips = max(1, len(data) // 2048)
    for _ in range(n_flips):
        pos = int(rng.integers(header_len, len(data)))
        data[pos] ^= 1 << int(rng.integers(0, 8))
    result = Decoder().decode(bytes(data), name=video.name, strict=False)
    decoded = Video(
        result.video.frames,
        video.fps,
        name=video.name,
        nominal_resolution=video.nominal_resolution,
    )
    return decoded, result.frames_concealed, len(result.concealed)


def _corrupt(video: Video) -> Video:
    """Physically corrupt a video: wreck all three planes.

    Luma is inverted and chroma is shifted by 128 (mod 256), so every
    plane's PSNR collapses to single digits — near-neutral chroma would
    survive plain inversion (255 - 128 ~ 128), and the quality metric
    averages plane PSNRs, so one intact plane could mask the damage.
    Deterministic by construction: no RNG draws.
    """
    frames = [
        Frame(
            y=np.clip(255 - f.y.astype(np.int16), 0, 255).astype(np.uint8),
            u=((f.u.astype(np.int16) + 128) % 256).astype(np.uint8),
            v=((f.v.astype(np.int16) + 128) % 256).astype(np.uint8),
        )
        for f in video.frames
    ]
    return Video(
        frames,
        video.fps,
        name=video.name,
        nominal_resolution=video.nominal_resolution,
    )


@dataclass
class FaultCounts:
    """How many of each fault a :class:`FaultyTranscoder` has injected."""

    crashes: int = 0
    stragglers: int = 0
    corruptions: int = 0
    stream_corruptions: int = 0
    #: Frames the decoder had to conceal across all stream corruptions.
    stream_corrupted_frames: int = 0
    #: Frames decoded (concealed or not) across all stream corruptions.
    stream_frames_seen: int = 0
    outages: int = 0

    def total(self) -> int:
        return (
            self.crashes
            + self.stragglers
            + self.corruptions
            + self.stream_corruptions
            + self.outages
        )


class FaultyTranscoder(Transcoder):
    """Inject the plan's faults around ``inner``.

    Args:
        inner: The real backend.
        plan: The fault plan.
        key: Stable identity for RNG derivation and ``dead_backends``
            matching; defaults to ``inner.name``.  The farm passes the
            registry spec (e.g. ``"x264:veryslow"``) so plans are written
            in the same vocabulary as the CLI.
    """

    def __init__(
        self, inner: Transcoder, plan: FaultPlan, key: Optional[str] = None
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.key = key if key is not None else inner.name
        self.name = inner.name
        self._rng = plan.rng_for(self.key)
        self.injected = FaultCounts()

    def transcode(self, video: Video, rate: RateSpec) -> TranscodeResult:
        if self.plan.is_dead(self.key):
            self.injected.outages += 1
            raise BackendOutage(
                f"backend {self.key!r} is down (permanent outage)", self.key
            )
        draw = float(self._rng.random())
        result = self.inner.transcode(video, rate)
        if draw < self.plan.crash_rate:
            self.injected.crashes += 1
            wasted = result.seconds * self.plan.crash_waste
            raise TransientFault(
                f"backend {self.key!r} crashed mid-transcode of "
                f"{video.name!r} ({wasted:.6f}s wasted)",
                self.key,
                wasted_seconds=wasted,
            )
        if draw < self.plan.crash_rate + self.plan.straggler_rate:
            self.injected.stragglers += 1
            result.seconds *= self.plan.straggler_factor
            return result
        if draw < (
            self.plan.crash_rate + self.plan.straggler_rate + self.plan.corrupt_rate
        ):
            self.injected.corruptions += 1
            result.output = _corrupt(result.output)
            return result
        if draw < (
            self.plan.crash_rate
            + self.plan.straggler_rate
            + self.plan.corrupt_rate
            + self.plan.corrupt_stream_rate
        ):
            self.injected.stream_corruptions += 1
            result.output, concealed, seen = _corrupt_stream(
                result.output, self._rng
            )
            self.injected.stream_corrupted_frames += concealed
            self.injected.stream_frames_seen += seen
            return result
        return result

    def __repr__(self) -> str:
        return f"FaultyTranscoder(key={self.key!r}, inner={self.inner!r})"
