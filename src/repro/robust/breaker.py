"""A per-backend circuit breaker (closed / open / half-open).

Retrying a dead backend wastes deadline budget on every job that touches
it.  The breaker converts repeated failure into fast rejection:

* **closed** — normal operation; consecutive failures are counted, and at
  ``failure_threshold`` the breaker trips open.
* **open** — every admission request is refused (callers degrade to the
  next ladder rung immediately) until ``cooldown_s`` of simulated time
  has passed.
* **half-open** — after the cooldown, a limited number of *probe* calls
  are admitted.  A probe success closes the breaker; a probe failure
  reopens it and restarts the cooldown.

State changes only on ``allow`` / ``record_*`` calls with explicit
timestamps from the farm's :class:`~repro.robust.clock.SimClock`, so the
breaker is as deterministic as everything else in :mod:`repro.robust`.
"""

from __future__ import annotations

import enum

__all__ = ["BreakerOpen", "BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class BreakerOpen(RuntimeError):
    """Raised by :meth:`CircuitBreaker.check` when admission is refused."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker over simulated time.

    Args:
        failure_threshold: Consecutive failures that trip the breaker.
        cooldown_s: Simulated seconds an open breaker waits before
            admitting probes.
        half_open_probes: Probe calls admitted per half-open episode.
    """

    def __init__(
        self,
        failure_threshold: int = 4,
        cooldown_s: float = 30.0,
        half_open_probes: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown_s}")
        if half_open_probes < 1:
            raise ValueError(
                f"need at least one half-open probe, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_admitted = 0

    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def allow(self, now: float) -> bool:
        """Whether a call may be attempted at simulated time ``now``."""
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            if now - self._opened_at < self.cooldown_s:
                return False
            self._state = BreakerState.HALF_OPEN
            self._probes_admitted = 0
        # Half-open: admit a bounded number of probes.
        if self._probes_admitted < self.half_open_probes:
            self._probes_admitted += 1
            return True
        return False

    def check(self, now: float) -> None:
        """Like :meth:`allow`, but raises :class:`BreakerOpen` on refusal."""
        if not self.allow(now):
            raise BreakerOpen(
                f"circuit open ({self._consecutive_failures} consecutive failures)"
            )

    def record_success(self) -> None:
        """A call admitted by :meth:`allow` succeeded."""
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probes_admitted = 0

    def record_failure(self, now: float) -> None:
        """A call admitted by :meth:`allow` failed at time ``now``."""
        self._consecutive_failures += 1
        if self._state is BreakerState.HALF_OPEN:
            self._state = BreakerState.OPEN
            self._opened_at = now
        elif (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._state = BreakerState.OPEN
            self._opened_at = now

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self._state.value}, "
            f"failures={self._consecutive_failures})"
        )
