"""Fault tolerance for the transcoding farm.

Deterministic building blocks — everything runs on seeded RNGs and a
simulated clock, so chaos experiments replay byte-identically:

* :mod:`repro.robust.clock` — the simulated clock.
* :mod:`repro.robust.faults` — seeded fault injection around any backend.
* :mod:`repro.robust.retry` — capped exponential backoff + deadline budgets.
* :mod:`repro.robust.breaker` — per-backend circuit breakers.
* :mod:`repro.robust.degrade` — the graceful-degradation ladder.

:class:`repro.pipeline.farm.TranscodeFarm` composes them into a worker
farm over the sharing service.
"""

from repro.robust.breaker import BreakerOpen, BreakerState, CircuitBreaker
from repro.robust.clock import EventQueue, SimClock
from repro.robust.degrade import DowngradeEvent, degradation_ladder
from repro.robust.faults import (
    BackendOutage,
    FaultCounts,
    FaultError,
    FaultPlan,
    FaultyTranscoder,
    TransientFault,
)
from repro.robust.retry import DeadlineBudget, DeadlinePolicy, RetryPolicy

__all__ = [
    "BackendOutage",
    "BreakerOpen",
    "BreakerState",
    "CircuitBreaker",
    "DeadlineBudget",
    "DeadlinePolicy",
    "DowngradeEvent",
    "EventQueue",
    "FaultCounts",
    "FaultError",
    "FaultPlan",
    "FaultyTranscoder",
    "RetryPolicy",
    "SimClock",
    "TransientFault",
    "degradation_ladder",
]
