"""Deadline-aware operating-point selection over the predictor.

The farm's degradation ladder is *reactive*: a job starts at the
configured preset and falls only after retries, breaker trips, or a
blown budget have already burned compute.  The scheduler is the
*proactive* twin from the transcoding-time-prediction literature
(PAPERS.md, arXiv 2312.05348): before the job runs, predict its time at
every candidate operating point and start it at the highest-quality one
whose prediction fits the deadline budget -- at minimum
:class:`~repro.pipeline.costs.CostModel` dollars among equal-quality
fits ("Where to Encode", arXiv 2106.06242).  The reactive ladder stays
underneath as the safety net for the cases prediction cannot see
(faults, breaker state).

Selection is a pure function of ``(features, rate, budget)``: quality
ranks are fixed by the preset ladder, predictions come from the
committed coefficients, and ties break lexicographically.  Determinism
of the traffic simulator is preserved by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

from repro.codec.presets import PRESETS
from repro.core.scenarios import Scenario
from repro.encoders.base import RateSpec
from repro.encoders.registry import HARDWARE_BACKENDS
from repro.pipeline.costs import CostModel
from repro.predict.features import JobFeatures
from repro.predict.model import TranscodeTimePredictor, default_predictor
from repro.video.video import Video

__all__ = [
    "DEFAULT_CANDIDATES",
    "DeadlineScheduler",
    "ScheduleDecision",
    "quality_rank",
]

#: Default candidate ladder: the delivery degradation ladder's rungs,
#: best quality first.  Capped at the farm's configured delivery preset
#: (``x264:medium``) so the scheduler can only *recover* quality the
#: reactive ladder would have thrown away, never spend more than the
#: static configuration would.
DEFAULT_CANDIDATES = ("x264:medium", "x264:veryfast", "x264:ultrafast", "qsv")

#: Upload has no per-request deadline; its SLO is throughput.  A job is
#: sustainable when it transcodes faster than this multiple of realtime,
#: so the throughput target doubles as a per-job time budget.
DEFAULT_UPLOAD_FACTOR = 4.0

#: Preset ladder order, fastest first (PRESETS is an insertion-ordered
#: mapping; the tuple freezes the ranking).
_PRESET_ORDER = tuple(PRESETS)


def quality_rank(spec: str) -> int:
    """Compression-quality rank of a backend spec (higher is better).

    Software presets rank by ladder position (slower preset = better
    compression, Section 4.2); hardware backends rank below every
    software preset -- the paper's Section 5.3 trade, bitrate sacrificed
    for speed, makes them the quality floor.
    """
    backend, _, preset_name = spec.partition(":")
    if backend in HARDWARE_BACKENDS:
        return 0
    return 1 + _PRESET_ORDER.index(preset_name or "medium")


@dataclass(frozen=True)
class ScheduleDecision:
    """One scheduling choice, with the evidence it was made on.

    Attributes:
        spec: The chosen operating point (rung 0 of the job's ladder).
        predicted_s: Predicted service seconds at ``spec`` (already
            time-scaled to the simulation's clock).
        quality_rank: :func:`quality_rank` of the choice.
        fits_budget: Whether the prediction fit the budget; ``False``
            means nothing fit and this is the fastest-predicted rung.
        cost_usd: Predicted compute dollars at ``spec``.
    """

    spec: str
    predicted_s: float
    quality_rank: int
    fits_budget: bool
    cost_usd: float


class DeadlineScheduler:
    """Pick the best candidate whose predicted time fits the budget.

    Args:
        predictor: Trained models; defaults to the committed
            coefficients.
        candidates: Operating points to choose among, any order.
        cost_model: Prices for the cost tie-break.
        time_scale: Multiplier matching the farm's ``time_scale``, so
            predictions are compared against budgets on the same clock.
        upload_factor: Upload's throughput target as a multiple of
            realtime (see :data:`DEFAULT_UPLOAD_FACTOR`).
    """

    def __init__(
        self,
        predictor: Optional[TranscodeTimePredictor] = None,
        candidates: Sequence[str] = DEFAULT_CANDIDATES,
        cost_model: Optional[CostModel] = None,
        time_scale: float = 1.0,
        upload_factor: float = DEFAULT_UPLOAD_FACTOR,
    ) -> None:
        if not candidates:
            raise ValueError("the scheduler needs at least one candidate")
        if not math.isfinite(time_scale) or time_scale <= 0:
            raise ValueError(
                f"time scale must be positive and finite, got {time_scale}"
            )
        if not math.isfinite(upload_factor) or upload_factor <= 0:
            raise ValueError(
                f"upload factor must be positive and finite, got {upload_factor}"
            )
        self.predictor = predictor if predictor is not None else default_predictor()
        self.candidates: Tuple[str, ...] = tuple(candidates)
        self.cost_model = cost_model or CostModel()
        self.time_scale = float(time_scale)
        self.upload_factor = float(upload_factor)
        for spec in self.candidates:
            quality_rank(spec)  # validate eagerly, not mid-simulation

    def budget_for(
        self, video: Video, scenario: Scenario, deadline_budget_s: float
    ) -> float:
        """The time budget a job of this scenario must fit.

        Live and batch scenarios bring their deadline budget; Upload
        substitutes its throughput target: sustained ingest must keep up
        with ``upload_factor`` times realtime, so one job may spend at
        most that multiple of its duration.  Budgets are expressed on
        the same (unscaled) clock as :class:`DeadlinePolicy` budgets;
        only predictions carry the time scale.
        """
        if scenario is Scenario.UPLOAD:
            return video.duration * self.upload_factor
        return deadline_budget_s

    def choose(
        self,
        features: JobFeatures,
        rate: RateSpec,
        budget_s: float,
        measured_s: Optional[Mapping[str, float]] = None,
    ) -> ScheduleDecision:
        """The highest-quality candidate predicted to fit ``budget_s``.

        Ties at equal quality rank break toward lower predicted compute
        cost, then lexicographic spec name.  When no candidate fits, the
        fastest-predicted one is returned with ``fits_budget=False`` --
        the least-late option, exactly what the degradation ladder would
        converge to after burning budget on the rungs above it.

        ``measured_s`` maps candidate specs to *observed* service times
        (already on the scaled clock): the farm is deterministic, so a
        measurement of this exact job at this exact operating point
        supersedes the model -- the same known-trumps-estimated rule the
        admission estimator applies.
        """
        scored = []
        for spec in self.candidates:
            if measured_s is not None and spec in measured_s:
                predicted = measured_s[spec]
            elif self.predictor.can_predict(spec, rate):
                predicted = (
                    self.predictor.predict_seconds(spec, rate, features)
                    * self.time_scale
                )
            else:
                continue
            scored.append(
                ScheduleDecision(
                    spec=spec,
                    predicted_s=predicted,
                    quality_rank=quality_rank(spec),
                    fits_budget=predicted <= budget_s,
                    cost_usd=self.cost_model.compute_dollars(predicted),
                )
            )
        if not scored:
            raise ValueError(
                "no candidate has a trained model for this rate mode; "
                f"candidates={self.candidates}"
            )
        fitting = [d for d in scored if d.fits_budget]
        if fitting:
            return min(
                fitting,
                key=lambda d: (-d.quality_rank, d.cost_usd, d.spec),
            )
        return min(scored, key=lambda d: (d.predicted_s, d.spec))

    def choose_remaining(
        self,
        features: JobFeatures,
        rate: RateSpec,
        budget_s: float,
        elapsed_s: float,
        measured_s: Optional[Mapping[str, float]] = None,
    ) -> ScheduleDecision:
        """Re-plan a redelivered job against what is *left* of its budget.

        A crashed worker's job comes back with its deadline clock still
        running: the wait it already served plus the wasted attempt are
        sunk, so the re-dispatch must fit ``budget_s - elapsed_s``.  When
        nothing fits (including a fully spent budget), :meth:`choose`
        degrades to the fastest rung — the least-late option for a job
        we still owe an answer on.
        """
        if not math.isfinite(elapsed_s) or elapsed_s < 0:
            raise ValueError(
                f"elapsed time must be finite and >= 0, got {elapsed_s}"
            )
        return self.choose(
            features,
            rate,
            max(budget_s - elapsed_s, 0.0),
            measured_s=measured_s,
        )
