"""A fault-tolerant transcoding farm over the sharing service.

:class:`TranscodeFarm` simulates N workers driving
:class:`~repro.pipeline.service.SharingService` uploads and Popular
promotions through the full robustness stack of :mod:`repro.robust`:

* every transcode runs behind :class:`ResilientTranscoder` — retries with
  capped, jittered backoff; per-backend circuit breakers; per-scenario
  deadline budgets (Live's real-time constraint is a hard deadline: a
  retry that would blow the budget is never attempted); and the graceful
  degradation ladder down to faster presets and finally the hardware
  model;
* compute wasted on crashed and corrupted attempts is booked into the
  service's :class:`~repro.pipeline.costs.CostReport` — chaos is not
  free, and the cost report shows exactly what it cost;
* jobs that exhaust the entire ladder land in a dead-letter queue instead
  of raising, so one poisoned upload cannot take down the batch;
* everything observable lands in a :class:`RobustnessReport` whose text
  rendering is byte-stable under a fixed seed.

Time is simulated (:class:`~repro.robust.clock.SimClock`): the farm seeks
the clock to each worker's frontier before running its next job, which
models parallelism deterministically on one interpreter thread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.scenarios import Scenario
from repro.encoders.base import (
    RateSpec,
    ScaledTranscoder,
    Transcoder,
    TranscodeResult,
)
from repro.encoders.registry import HARDWARE_BACKENDS, get_transcoder
from repro.pipeline.costs import CostModel, CostReport
from repro.pipeline.service import ServiceConfig, SharingService, VideoRecord
from repro.robust.breaker import BreakerState, CircuitBreaker
from repro.robust.clock import SimClock
from repro.robust.degrade import (
    DEFAULT_PRESET_FALLBACKS,
    DowngradeEvent,
    degradation_ladder,
)
from repro.robust.faults import (
    BackendOutage,
    FaultCounts,
    FaultPlan,
    FaultyTranscoder,
    TransientFault,
)
from repro.robust.retry import DeadlineBudget, DeadlinePolicy, RetryPolicy
from repro.video.video import Video

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.exec.cache import CacheStats, TranscodeCache

__all__ = [
    "DeadLetter",
    "FarmConfig",
    "FarmJobError",
    "JobTiming",
    "ResilientTranscoder",
    "RobustnessReport",
    "TranscodeFarm",
]


class FarmJobError(RuntimeError):
    """Every rung of the degradation ladder failed for one transcode."""

    def __init__(self, job: str, reason: str) -> None:
        super().__init__(f"job {job!r} exhausted its ladder: {reason}")
        self.job = job
        self.reason = reason


@dataclass(frozen=True)
class FarmConfig:
    """Farm-level robustness policy.

    Attributes:
        workers: Simulated parallel workers.
        retry: Backoff policy per ladder rung.
        deadlines: Per-scenario deadline budgets.
        breaker_failure_threshold: Consecutive failures that open a
            backend's circuit.
        breaker_cooldown_s: Simulated seconds an open circuit waits
            before admitting probes.
        quality_floor_db: Outputs below this PSNR are treated as
            corrupted (failed) attempts.
        outage_detect_s: Simulated cost of discovering a dead backend
            (connection timeout).
        preset_fallbacks: Software presets the degradation ladder may
            fall to.
        hardware_fallback: Final ladder rung (a hardware backend spec),
            or ``None`` for software-only ladders.
        time_scale: Multiplier applied to every backend's modeled
            ``seconds``.  The suite's clips are tiny stand-ins for the
            category resolutions they represent, so their modeled times
            are milliseconds; the traffic simulator scales them back up to
            the represented scale so queueing and deadlines are exercised
            realistically.  ``1.0`` (the default) leaves time untouched.
    """

    workers: int = 4
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    deadlines: DeadlinePolicy = field(default_factory=DeadlinePolicy)
    breaker_failure_threshold: int = 4
    breaker_cooldown_s: float = 30.0
    breaker_half_open_probes: int = 1
    quality_floor_db: float = 15.0
    outage_detect_s: float = 0.01
    preset_fallbacks: Tuple[str, ...] = DEFAULT_PRESET_FALLBACKS
    hardware_fallback: Optional[str] = "qsv"
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"need at least one worker, got {self.workers}")
        if not math.isfinite(self.time_scale) or self.time_scale <= 0:
            raise ValueError(
                f"time scale must be positive and finite, got {self.time_scale}"
            )
        if self.quality_floor_db < 0:
            raise ValueError(
                f"quality floor must be non-negative, got {self.quality_floor_db}"
            )
        if self.outage_detect_s < 0:
            raise ValueError(
                f"outage detection cost must be >= 0, got {self.outage_detect_s}"
            )


@dataclass(frozen=True)
class DeadLetter:
    """A job the farm gave up on, with enough context to replay it."""

    job: str
    stage: str  # "upload", "promote", "job", or "fleet"
    reason: str


@dataclass(frozen=True)
class JobTiming:
    """Per-job timing of one externally-scheduled transcode.

    Returned by :meth:`TranscodeFarm.execute_job` so a scheduler above
    the farm (the traffic simulator) can account queue wait and service
    time per request.

    Attributes:
        job: Job label (defaults to the video name).
        scenario: The scenario the job ran under.
        started_s: Simulated time the transcode started.
        finished_s: Simulated time it completed (or dead-lettered).
        completed: Whether the job produced output; ``False`` means the
            whole degradation ladder failed and the job dead-lettered.
        reason: The dead-letter reason when ``completed`` is ``False``.
        spec: Rung-0 operating point the job was started at.
        predicted_s: Scheduler-predicted service seconds, when a
            deadline scheduler chose ``spec`` (0.0 otherwise).
    """

    job: str
    scenario: Scenario
    started_s: float
    finished_s: float
    completed: bool
    reason: str = ""
    spec: str = ""
    predicted_s: float = 0.0

    @property
    def service_s(self) -> float:
        """Simulated seconds the job occupied its worker."""
        return self.finished_s - self.started_s


@dataclass
class RobustnessReport:
    """Everything a chaos experiment observed.

    ``to_text()`` renders with fixed precision and sorted keys, so two
    runs under the same seed produce byte-identical reports.
    """

    jobs_total: int = 0
    jobs_completed: int = 0
    attempts: int = 0
    retries: int = 0
    deadline_retry_skips: int = 0
    deadline_misses: int = 0
    transient_failures: int = 0
    outage_failures: int = 0
    corrupt_detected: int = 0
    wasted_compute_s: float = 0.0
    makespan_s: float = 0.0
    downgrades: List[DowngradeEvent] = field(default_factory=list)
    dead_letters: List[DeadLetter] = field(default_factory=list)
    breaker_states: Dict[str, str] = field(default_factory=dict)
    breaker_failures: Dict[str, int] = field(default_factory=dict)
    injected: Dict[str, FaultCounts] = field(default_factory=dict)

    @property
    def jobs_dead_lettered(self) -> int:
        return len(self.dead_letters)

    @property
    def stream_corruptions(self) -> int:
        """Transcodes whose output bitstream was corrupted in flight."""
        return sum(c.stream_corruptions for c in self.injected.values())

    @property
    def stream_corrupted_frames(self) -> int:
        """Frames the decoder concealed across all stream corruptions."""
        return sum(c.stream_corrupted_frames for c in self.injected.values())

    @property
    def stream_frames_seen(self) -> int:
        """Frames decoded (concealed or not) across all stream corruptions."""
        return sum(c.stream_frames_seen for c in self.injected.values())

    @property
    def stream_decodable_fraction(self) -> float:
        """Fraction of frames in corrupted streams decoded without
        concealment (1.0 when no stream corruption was injected)."""
        if self.stream_frames_seen == 0:
            return 1.0
        return 1.0 - self.stream_corrupted_frames / self.stream_frames_seen

    def to_text(self) -> str:
        lines = [
            "RobustnessReport",
            f"  jobs:            {self.jobs_total} total, "
            f"{self.jobs_completed} completed, "
            f"{self.jobs_dead_lettered} dead-lettered",
            f"  attempts:        {self.attempts} "
            f"({self.retries} retries, "
            f"{self.deadline_retry_skips} retries skipped by deadline)",
            f"  faults seen:     transient={self.transient_failures} "
            f"outage={self.outage_failures} corrupt={self.corrupt_detected}",
            f"  deadline misses: {self.deadline_misses}",
            f"  wasted compute:  {self.wasted_compute_s:.6f} s",
            f"  makespan:        {self.makespan_s:.6f} s",
            f"  downgrades ({len(self.downgrades)}):",
        ]
        for event in self.downgrades:
            lines.append(
                f"    {event.job}: {event.from_spec} -> {event.to_spec} "
                f"[{event.reason}]"
            )
        lines.append("  breakers:")
        for spec in sorted(self.breaker_states):
            lines.append(
                f"    {spec}: {self.breaker_states[spec]} "
                f"({self.breaker_failures.get(spec, 0)} consecutive failures)"
            )
        lines.append("  injected faults:")
        for spec in sorted(self.injected):
            counts = self.injected[spec]
            line = (
                f"    {spec}: crashes={counts.crashes} "
                f"stragglers={counts.stragglers} "
                f"corruptions={counts.corruptions} outages={counts.outages}"
            )
            if counts.stream_corruptions:
                line += f" stream_corruptions={counts.stream_corruptions}"
            lines.append(line)
        if self.stream_corruptions:
            lines.append(
                f"  stream damage:   {self.stream_corruptions} streams, "
                f"{self.stream_corrupted_frames}/{self.stream_frames_seen} "
                f"frames concealed "
                f"(decodable fraction {self.stream_decodable_fraction:.3f})"
            )
        lines.append(f"  dead letters ({len(self.dead_letters)}):")
        for letter in self.dead_letters:
            lines.append(f"    {letter.job} [{letter.stage}]: {letter.reason}")
        return "\n".join(lines)


class ResilientTranscoder(Transcoder):
    """Retry + breaker + degradation around a ladder of backends.

    Implements the plain :class:`Transcoder` interface, so it drops into
    :class:`SharingService` unchanged.  Each ``transcode`` call is one
    *job attempt stream*: rung by rung down the ladder, with per-rung
    retries, a deadline budget shared across the whole call, and wasted
    compute booked into ``costs``.

    Args:
        ladder: Backend specs, most-preferred first.
        pool: Shared spec -> transcoder instances (fault-wrapped or not).
        breakers: Shared spec -> circuit breaker.
        clock: The farm clock.
        retry: Backoff policy.
        report: The farm's report (mutated in place).
        config: Farm policy (quality floor, outage cost).
        costs: Cost report for wasted compute; assigned by the farm after
            the service exists.
    """

    def __init__(
        self,
        ladder: Sequence[str],
        pool: Dict[str, Transcoder],
        breakers: Dict[str, CircuitBreaker],
        clock: SimClock,
        retry: RetryPolicy,
        report: RobustnessReport,
        config: FarmConfig,
        costs: Optional[CostReport] = None,
    ) -> None:
        if not ladder:
            raise ValueError("a resilient transcoder needs at least one rung")
        self.ladder = list(ladder)
        self.pool = pool
        self.breakers = breakers
        self.clock = clock
        self.retry = retry
        self.report = report
        self.config = config
        self.costs = costs
        self.name = f"resilient({self.ladder[0]})"
        self._budget_s: Optional[float] = None

    def set_budget(self, budget_s: Optional[float]) -> None:
        """Deadline budget applied to each subsequent ``transcode`` call."""
        self._budget_s = budget_s

    # -- internals ------------------------------------------------------------

    def _book_waste(self, seconds: float) -> None:
        self.report.wasted_compute_s += seconds
        if self.costs is not None:
            self.costs.add_compute(seconds)

    def _adapt_rate(self, spec: str, rate: RateSpec) -> RateSpec:
        """Hardware rungs have no two-pass mode; fall back to single pass."""
        backend = spec.partition(":")[0]
        if backend in HARDWARE_BACKENDS and rate.two_pass:
            return RateSpec.for_bitrate(rate.bitrate_bps, two_pass=False)
        return rate

    def _downgrade(self, job: str, index: int, reason: str) -> None:
        """Record the fall from rung ``index`` to the next one."""
        self.report.downgrades.append(
            DowngradeEvent(
                job=job,
                from_spec=self.ladder[index],
                to_spec=self.ladder[index + 1],
                reason=reason,
            )
        )

    # -- the resilient call ----------------------------------------------------

    def transcode(self, video: Video, rate: RateSpec) -> TranscodeResult:
        budget = DeadlineBudget(self.clock, self._budget_s)
        last_reason = "no rung admitted the job"
        for index, spec in enumerate(self.ladder):
            last_rung = index == len(self.ladder) - 1
            breaker = self.breakers[spec]
            # The final rung is the last resort: it runs even through an
            # open breaker, because refusing it means losing the job.
            if not last_rung and not breaker.allow(self.clock.now):
                self._downgrade(video.name, index, "breaker-open")
                last_reason = f"{spec}: circuit open"
                continue
            transcoder = self.pool[spec]
            adapted = self._adapt_rate(spec, rate)
            failures = 0
            while True:
                self.report.attempts += 1
                try:
                    result = transcoder.transcode(video, adapted)
                except BackendOutage as fault:
                    self.clock.advance(self.config.outage_detect_s)
                    breaker.record_failure(self.clock.now)
                    self.report.outage_failures += 1
                    last_reason = str(fault)
                except TransientFault as fault:
                    self.clock.advance(fault.wasted_seconds)
                    self._book_waste(fault.wasted_seconds)
                    breaker.record_failure(self.clock.now)
                    self.report.transient_failures += 1
                    last_reason = str(fault)
                else:
                    self.clock.advance(result.seconds)
                    if result.quality_db < self.config.quality_floor_db:
                        # Corrupted output: the compute is spent, the
                        # bytes are garbage.
                        self._book_waste(result.seconds)
                        breaker.record_failure(self.clock.now)
                        self.report.corrupt_detected += 1
                        last_reason = (
                            f"{spec}: output quality "
                            f"{result.quality_db:.1f} dB below floor"
                        )
                    else:
                        breaker.record_success()
                        if budget.exceeded:
                            self.report.deadline_misses += 1
                        return result
                failures += 1
                if failures >= self.retry.max_attempts:
                    if not last_rung:
                        self._downgrade(video.name, index, "retries-exhausted")
                    break
                delay = self.retry.backoff_s(failures, key=spec)
                if not budget.allows(delay):
                    self.report.deadline_retry_skips += 1
                    if not last_rung:
                        self._downgrade(video.name, index, "deadline")
                    break
                self.clock.advance(delay)
                self.report.retries += 1
        raise FarmJobError(video.name, last_reason)


class _FarmService(SharingService):
    """Sharing service whose Popular promotions survive backend failure.

    A failed promotion is dead-lettered and the record stays unpromoted
    (it will be retried the next time its view count crosses the
    threshold check), instead of aborting the whole view batch.
    """

    def __init__(self, farm: "TranscodeFarm", **kwargs) -> None:
        super().__init__(**kwargs)
        self._farm = farm

    def _promote(self, record: VideoRecord) -> None:
        farm = self._farm
        farm._popular.set_budget(
            farm.config.deadlines.budget_s(record.video, Scenario.POPULAR)
        )
        try:
            super()._promote(record)
        except FarmJobError as error:
            farm.report.dead_letters.append(
                DeadLetter(job=record.name, stage="promote", reason=error.reason)
            )

    def serve_views(self, views_by_name: Dict[str, int]) -> List[str]:
        promoted = super().serve_views(views_by_name)
        # A swallowed promotion failure leaves the record unpromoted; only
        # report the promotions that actually happened.
        return [name for name in promoted if self.catalog[name].popular]


class TranscodeFarm:
    """N simulated workers running the sharing service with fault tolerance.

    Args:
        delivery_backend: Preferred backend spec for universal + delivery
            transcodes (rung 0 of its degradation ladder).
        popular_backend: Preferred backend spec for Popular re-transcodes.
        config: Farm robustness policy.
        service_config: Sharing-service policy knobs.
        cost_model: Unit prices for the cost report.
        fault_plan: Faults to inject; ``None`` runs the farm fault-free
            (the control arm of a chaos experiment).
        cache: Optional persistent transcode cache.  Wrapped *inside* the
            fault injector, so chaos still fires on every call while the
            underlying clean encodes are reused; the compute the cache
            avoided is surfaced through the cost report.
        memoize: Keep an in-process memo of completed transcodes (same
            content-addressed keys as the cache, no disk).  Like the
            cache, the memo sits inside the fault injector and the time
            scaler, so the robustness stack runs on every call while
            identical encodes are replayed — the traffic simulator's way
            of serving thousands of requests over a small catalog.
    """

    def __init__(
        self,
        delivery_backend: str = "x264:medium",
        popular_backend: str = "x264:veryslow",
        config: Optional[FarmConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        cost_model: Optional[CostModel] = None,
        fault_plan: Optional[FaultPlan] = None,
        cache: Optional["TranscodeCache"] = None,
        memoize: bool = False,
    ) -> None:
        self.config = config or FarmConfig()
        self.fault_plan = fault_plan
        self.cache = cache
        self._cache_stats_before: Optional["CacheStats"] = (
            cache.stats.copy() if cache is not None else None
        )
        self.clock = SimClock()
        self.report = RobustnessReport()
        ladders = {
            "delivery": degradation_ladder(
                delivery_backend,
                self.config.preset_fallbacks,
                self.config.hardware_fallback,
            ),
            "popular": degradation_ladder(
                popular_backend,
                self.config.preset_fallbacks,
                self.config.hardware_fallback,
            ),
        }
        self._memoize = memoize
        self.pool: Dict[str, Transcoder] = {}
        self.breakers: Dict[str, CircuitBreaker] = {}
        for spec in sorted(set(ladders["delivery"]) | set(ladders["popular"])):
            self._ensure_spec(spec)
        self._delivery = self._adapter(ladders["delivery"])
        self._popular = self._adapter(ladders["popular"])
        self.service = _FarmService(
            farm=self,
            delivery_backend=self._delivery,
            popular_backend=self._popular,
            config=service_config,
            cost_model=cost_model,
        )
        # The service owns the cost report; wire it back so the adapters
        # can book wasted compute into the same ledger.
        self._delivery.costs = self.service.costs
        self._popular.costs = self.service.costs
        self._workers = [0.0] * self.config.workers
        # Per-spec adapters for scheduler-chosen operating points, built
        # lazily so the common static-spec path allocates nothing extra.
        self._spec_adapters: Dict[str, ResilientTranscoder] = {}

    def _make_backend(self, spec: str) -> Transcoder:
        """One backend wrapped in the cache/memo/scale/fault stack."""
        backend = get_transcoder(spec)
        if self.cache is not None:
            backend = self.cache.wrap(backend)
        if self._memoize:
            from repro.exec.cache import MemoizingTranscoder

            backend = MemoizingTranscoder(backend)
        if self.config.time_scale != 1.0:
            backend = ScaledTranscoder(backend, self.config.time_scale)
        if self.fault_plan is not None:
            backend = FaultyTranscoder(backend, self.fault_plan, key=spec)
        return backend

    def _ensure_spec(self, spec: str) -> None:
        """Admit ``spec`` (and its breaker) into the shared pool."""
        if spec in self.pool:
            return
        self.pool[spec] = self._make_backend(spec)
        self.breakers[spec] = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            half_open_probes=self.config.breaker_half_open_probes,
        )

    def _adapter(self, ladder: Sequence[str]) -> ResilientTranscoder:
        return ResilientTranscoder(
            ladder=ladder,
            pool=self.pool,
            breakers=self.breakers,
            clock=self.clock,
            retry=self.config.retry,
            report=self.report,
            config=self.config,
        )

    def _job_adapter(self, spec: str) -> ResilientTranscoder:
        """The resilient adapter whose ladder starts at ``spec``.

        Shares the farm-wide pool and breakers, so a scheduler-chosen
        rung sees the same circuit state and fault plan as the static
        paths; only the ladder's starting rung differs.
        """
        adapter = self._spec_adapters.get(spec)
        if adapter is None:
            ladder = degradation_ladder(
                spec,
                self.config.preset_fallbacks,
                self.config.hardware_fallback,
            )
            for rung in ladder:
                self._ensure_spec(rung)
            adapter = self._adapter(ladder)
            adapter.costs = self.service.costs
            self._spec_adapters[spec] = adapter
        return adapter

    @property
    def costs(self) -> CostReport:
        return self.service.costs

    @property
    def catalog(self) -> Dict[str, VideoRecord]:
        return self.service.catalog

    # -- ingest ---------------------------------------------------------------

    def upload(self, video: Video, live: bool = False) -> Optional[VideoRecord]:
        """Ingest one video on the least-busy worker.

        Returns the catalog record, or ``None`` if the job exhausted its
        ladder and was dead-lettered (the farm never raises for a fault).
        """
        worker = min(range(len(self._workers)), key=self._workers.__getitem__)
        self.clock.seek(self._workers[worker])
        self.report.jobs_total += 1
        scenario = Scenario.LIVE if live else Scenario.VOD
        self._delivery.set_budget(self.config.deadlines.budget_s(video, scenario))
        try:
            record = self.service.upload(video, live=live)
            self.report.jobs_completed += 1
            return record
        except FarmJobError as error:
            self.report.dead_letters.append(
                DeadLetter(job=video.name, stage="upload", reason=error.reason)
            )
            return None
        finally:
            self._workers[worker] = self.clock.now

    def upload_all(
        self, videos: Sequence[Video], live: bool = False
    ) -> List[VideoRecord]:
        """Upload a batch; returns the records that completed."""
        records = [self.upload(video, live=live) for video in videos]
        return [record for record in records if record is not None]

    # -- externally-driven job streams ----------------------------------------

    #: Bitrate operating point for rate-controlled traffic jobs, in bits
    #: per pixel-second — scaled by each clip's pixel rate so every title
    #: gets a comparable target regardless of its stand-in geometry.
    JOB_BITS_PER_PIXEL_SECOND = 0.15
    #: Floor below which a bitrate target is not meaningful for the codec.
    JOB_MIN_BITRATE_BPS = 1000.0

    def job_rate(self, video: Video, scenario: Scenario) -> RateSpec:
        """The rate specification a traffic job runs under.

        Upload jobs normalize at the service's constant-quality point;
        Live jobs are single-pass rate-controlled (no second pass inside
        a real-time budget); VOD and Popular jobs afford two-pass.
        """
        if scenario is Scenario.UPLOAD:
            return RateSpec.for_crf(self.service.config.upload_crf)
        target = max(
            self.JOB_BITS_PER_PIXEL_SECOND * video.frame_pixels * video.fps,
            self.JOB_MIN_BITRATE_BPS,
        )
        return RateSpec.for_bitrate(target, two_pass=not scenario.realtime)

    def execute_job(
        self,
        video: Video,
        scenario: Scenario,
        at_s: float,
        job: Optional[str] = None,
        rate: Optional[RateSpec] = None,
        spec: Optional[str] = None,
        budget_s: Optional[float] = None,
        predicted_s: float = 0.0,
    ) -> JobTiming:
        """Run one externally-scheduled transcode starting at ``at_s``.

        This is the entry point for job streams driven from above the
        farm (the traffic simulator): the caller owns worker placement
        and queueing, the farm owns the robustness stack.  The clock is
        seeked to ``at_s`` (the worker's dispatch time), the job runs
        through the full retry/breaker/degradation ladder with its
        scenario's deadline budget, and the timing of whatever happened
        comes back as a :class:`JobTiming`.  A job that exhausts its
        ladder is dead-lettered, never raised.

        A deadline scheduler steers the job with ``spec`` (the ladder's
        starting rung, sharing the farm-wide pool and breakers),
        ``budget_s`` (e.g. the *remaining* deadline budget after queue
        wait, instead of the scenario's full budget), and
        ``predicted_s`` (recorded on the timing for error accounting).
        Successful compute is booked into the cost report here; wasted
        attempts are booked inside the resilient adapter either way.
        """
        label = job if job is not None else video.name
        self.clock.seek(at_s)
        self.report.jobs_total += 1
        if spec is not None:
            adapter = self._job_adapter(spec)
        else:
            adapter = (
                self._popular if scenario is Scenario.POPULAR else self._delivery
            )
        adapter.set_budget(
            budget_s
            if budget_s is not None
            else self.config.deadlines.budget_s(video, scenario)
        )
        rate_spec = rate if rate is not None else self.job_rate(video, scenario)
        try:
            result = adapter.transcode(video, rate_spec)
        except FarmJobError as error:
            self.report.dead_letters.append(
                DeadLetter(job=label, stage="job", reason=error.reason)
            )
            return JobTiming(
                job=label,
                scenario=scenario,
                started_s=at_s,
                finished_s=self.clock.now,
                completed=False,
                reason=error.reason,
                spec=adapter.ladder[0],
                predicted_s=predicted_s,
            )
        self.service.costs.add_compute(result.seconds)
        self.report.jobs_completed += 1
        return JobTiming(
            job=label,
            scenario=scenario,
            started_s=at_s,
            finished_s=self.clock.now,
            completed=True,
            spec=adapter.ladder[0],
            predicted_s=predicted_s,
        )

    def dead_letter(self, job: str, stage: str, reason: str) -> None:
        """File a dead letter for a job the layer *above* gave up on.

        The fleet layer uses this when a request exhausts its redelivery
        budget: the farm never saw the final attempt fail (the worker
        died silently), but the dead-letter queue is the single place
        replayable failures live, so the give-up is recorded here with
        ``stage="fleet"`` and the attempt metadata in ``reason``.
        """
        self.report.dead_letters.append(
            DeadLetter(job=job, stage=stage, reason=reason)
        )

    # -- viewing --------------------------------------------------------------

    def serve_views(self, views_by_name: Dict[str, int]) -> List[str]:
        """Serve playbacks; failed promotions dead-letter, views survive."""
        return self.service.serve_views(views_by_name)

    def simulate_views(self, total_views: int, seed: int = 0) -> List[str]:
        """Draw views from the popularity model over the catalog."""
        return self.service.simulate_views(total_views, seed=seed)

    # -- reporting ------------------------------------------------------------

    def finalize(self) -> RobustnessReport:
        """Snapshot breaker states and timing into the report."""
        report = self.report
        report.makespan_s = max(self._workers + [self.clock.now])
        report.breaker_states = {
            spec: breaker.state.value for spec, breaker in self.breakers.items()
        }
        report.breaker_failures = {
            spec: breaker.consecutive_failures
            for spec, breaker in self.breakers.items()
        }
        report.injected = {
            spec: backend.injected
            for spec, backend in self.pool.items()
            if isinstance(backend, FaultyTranscoder)
        }
        if self.cache is not None:
            self.service.costs.cache = self.cache.stats.since(
                self._cache_stats_before
            )
        return report

    def breaker_state(self, spec: str) -> BreakerState:
        """Current breaker state for one backend spec."""
        return self.breakers[spec].state
