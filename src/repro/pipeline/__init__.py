"""Video sharing service simulation (Section 2.5, Figure 3).

Models the transcoding passes of a YouTube-class infrastructure: uploads
arrive in arbitrary formats, get a universal transcode, then live or VOD
transcodes into the delivery ladder; videos observed to be popular earn a
high-effort re-transcode whose cost is amortized over their many
playbacks.  A storage/network/compute cost model quantifies the tradeoffs
the paper's scenarios encode.

:mod:`repro.pipeline.farm` adds the production layer: a fault-tolerant
worker farm (retries, circuit breakers, deadlines, graceful degradation,
dead-letter queue) driving the same service under injected chaos.
"""

from repro.pipeline.costs import CostModel, CostReport
from repro.pipeline.farm import (
    DeadLetter,
    FarmConfig,
    FarmJobError,
    ResilientTranscoder,
    RobustnessReport,
    TranscodeFarm,
)
from repro.pipeline.ladder import LadderRung, build_ladder
from repro.pipeline.service import ServiceConfig, SharingService, VideoRecord

__all__ = [
    "CostModel",
    "CostReport",
    "DeadLetter",
    "FarmConfig",
    "FarmJobError",
    "LadderRung",
    "ResilientTranscoder",
    "RobustnessReport",
    "ServiceConfig",
    "SharingService",
    "TranscodeFarm",
    "VideoRecord",
    "build_ladder",
]
