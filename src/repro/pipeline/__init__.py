"""Video sharing service simulation (Section 2.5, Figure 3).

Models the transcoding passes of a YouTube-class infrastructure: uploads
arrive in arbitrary formats, get a universal transcode, then live or VOD
transcodes into the delivery ladder; videos observed to be popular earn a
high-effort re-transcode whose cost is amortized over their many
playbacks.  A storage/network/compute cost model quantifies the tradeoffs
the paper's scenarios encode.
"""

from repro.pipeline.costs import CostModel, CostReport
from repro.pipeline.ladder import LadderRung, build_ladder
from repro.pipeline.service import ServiceConfig, SharingService, VideoRecord

__all__ = [
    "CostModel",
    "CostReport",
    "LadderRung",
    "ServiceConfig",
    "SharingService",
    "VideoRecord",
    "build_ladder",
]
