"""The sharing-service pipeline: Figure 3 as an executable simulation.

Every uploaded video flows through:

1. **Universal transcode** -- normalize the arbitrary upload into the
   intermediate format (single pass, constant quality -- the Upload
   scenario's operating point).
2. **Delivery transcode** -- live (single pass, real-time) or VOD
   (two-pass) into the delivery copy; every upload must be playable.
3. **Popular re-transcode** -- once a video's observed views cross the
   popularity threshold, a high-effort encoder produces a smaller,
   equal-or-better copy; the compute is amortized over the remaining
   views and the egress savings are multiplied by them.

The simulation runs on real transcodes of (stand-in) clips and real
popularity draws, and books every byte and second into a
:class:`~repro.pipeline.costs.CostReport` -- so "GPUs shift cost from
compute to storage and network" is something you can measure here, not
just read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.corpus.popularity import PopularityModel
from repro.encoders.base import RateSpec, Transcoder
from repro.encoders.hardware import HardwareTranscoder
from repro.encoders.registry import get_transcoder
from repro.pipeline.costs import CostModel, CostReport
from repro.video.video import Video

__all__ = ["ServiceConfig", "VideoRecord", "SharingService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Service policy knobs.

    Attributes:
        upload_crf: Constant-quality point of the universal transcode.
        vod_bitrate_scale: Delivery bitrate as a fraction of the
            universal copy's bitrate.
        popular_threshold_views: Views after which a video earns the
            high-effort re-transcode.
        retention_months: Billing horizon for storage.
    """

    upload_crf: int = 18
    vod_bitrate_scale: float = 0.6
    popular_threshold_views: int = 1000
    retention_months: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.vod_bitrate_scale <= 1.0:
            raise ValueError("vod_bitrate_scale must be in (0, 1]")
        if self.popular_threshold_views < 1:
            raise ValueError("popularity threshold must be >= 1")
        if self.retention_months <= 0:
            raise ValueError("retention must be positive")


@dataclass
class VideoRecord:
    """Service-side state of one hosted video."""

    name: str
    video: Video
    delivery_bytes: int = 0
    views: int = 0
    popular: bool = False
    egress_bytes: float = 0.0


class SharingService:
    """A video sharing service built on pluggable transcoder backends.

    Args:
        delivery_backend: Transcoder for the live/VOD pass (name or
            instance).
        popular_backend: Transcoder for the Popular pass.
        config: Policy knobs.
        cost_model: Unit prices.
    """

    def __init__(
        self,
        delivery_backend: "str | Transcoder" = "x264:medium",
        popular_backend: "str | Transcoder" = "x264:veryslow",
        config: Optional[ServiceConfig] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.delivery = (
            get_transcoder(delivery_backend)
            if isinstance(delivery_backend, str)
            else delivery_backend
        )
        self.popular = (
            get_transcoder(popular_backend)
            if isinstance(popular_backend, str)
            else popular_backend
        )
        self.config = config or ServiceConfig()
        self.costs = CostReport(model=cost_model or CostModel())
        self.catalog: Dict[str, VideoRecord] = {}

    # -- ingest ---------------------------------------------------------------

    def upload(self, video: Video, live: bool = False) -> VideoRecord:
        """Ingest one video: universal transcode, then delivery transcode.

        ``live`` selects single-pass low-latency delivery; otherwise the
        VOD two-pass path runs.
        """
        if not video.name:
            raise ValueError("uploads must be named")
        if video.name in self.catalog:
            raise ValueError(f"duplicate upload {video.name!r}")
        cfg = self.config
        universal = self.delivery.transcode(video, RateSpec.for_crf(cfg.upload_crf))
        self.costs.add_compute(universal.seconds)
        target = max(universal.bitrate * cfg.vod_bitrate_scale, 1000.0)
        two_pass = not live and not isinstance(self.delivery, HardwareTranscoder)
        delivery = self.delivery.transcode(
            universal.output, RateSpec.for_bitrate(target, two_pass=two_pass)
        )
        self.costs.add_compute(delivery.seconds)
        self.costs.add_storage(
            delivery.compressed_bytes, months=cfg.retention_months
        )
        record = VideoRecord(
            name=video.name,
            video=universal.output,
            delivery_bytes=delivery.compressed_bytes,
        )
        self.catalog[video.name] = record
        return record

    # -- viewing --------------------------------------------------------------

    def serve_views(self, views_by_name: Dict[str, int]) -> List[str]:
        """Serve playbacks; returns names newly promoted to popular.

        Each view egresses the delivery copy.  Crossing the popularity
        threshold triggers the high-effort re-transcode: smaller bytes for
        every later view, storage for one more replica, compute once.

        The batch is validated up front: a negative count or unknown name
        rejects the whole request before any record is mutated or any cost
        is booked, so a bad entry cannot leave the catalog half-updated.
        """
        for name, views in views_by_name.items():
            if views < 0:
                raise ValueError(f"negative views for {name!r}")
            if name not in self.catalog:
                raise KeyError(f"unknown video {name!r}")
        promoted: List[str] = []
        for name, views in views_by_name.items():
            record = self.catalog[name]
            record.views += views
            egress = views * record.delivery_bytes
            record.egress_bytes += egress
            self.costs.add_egress(egress)
            if (
                not record.popular
                and record.views >= self.config.popular_threshold_views
            ):
                self._promote(record)
                promoted.append(name)
        return promoted

    def _promote(self, record: VideoRecord) -> None:
        """Run the Popular re-transcode for a newly hot video."""
        target = max(
            record.delivery_bytes * 8.0 / record.video.duration * 0.9, 1000.0
        )
        result = self.popular.transcode(
            record.video,
            RateSpec.for_bitrate(
                target,
                two_pass=not isinstance(self.popular, HardwareTranscoder),
            ),
        )
        self.costs.add_compute(result.seconds)
        self.costs.add_storage(
            result.compressed_bytes, months=self.config.retention_months
        )
        if result.compressed_bytes < record.delivery_bytes:
            record.delivery_bytes = result.compressed_bytes
        record.popular = True

    # -- simulation -------------------------------------------------------------

    def simulate_views(
        self,
        total_views: int,
        popularity: Optional[PopularityModel] = None,
        seed: int = 0,
    ) -> List[str]:
        """Draw ``total_views`` from a popularity model over the catalog.

        Videos are ranked by upload order; returns the promoted names.
        """
        if not self.catalog:
            raise ValueError("no videos uploaded")
        if total_views < 0:
            raise ValueError("total_views must be non-negative")
        names = list(self.catalog)
        model = popularity or PopularityModel()
        rng = np.random.default_rng(seed)
        ranks = model.sample_ranks(total_views, len(names), rng)
        counts = np.bincount(ranks - 1, minlength=len(names))
        return self.serve_views(
            {name: int(c) for name, c in zip(names, counts) if c}
        )
