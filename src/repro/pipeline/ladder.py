"""Per-title bitrate ladders: the VOD packaging layer.

Section 2.5: every upload "must be converted to a range of resolutions,
formats, and bitrates to suit varied viewer capabilities".  A fixed
bitrate table wastes bits on easy titles and starves hard ones, so
services derive *per-title* ladders: for each quality rung, find the
smallest bitrate that reaches it on this content.

``build_ladder`` does exactly that with the bisection harness, producing
the (quality target, bitrate, achieved quality) rungs a packager would
hand to the CDN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.harness import bisect_to_quality
from repro.encoders.base import Transcoder
from repro.encoders.registry import get_transcoder
from repro.video.video import Video

__all__ = ["LadderRung", "build_ladder", "DEFAULT_QUALITY_TARGETS"]

#: Default quality rungs in dB: from watchable-on-mobile to archival.
DEFAULT_QUALITY_TARGETS = (32.0, 36.0, 40.0, 44.0)


@dataclass(frozen=True)
class LadderRung:
    """One delivery rung of a per-title ladder."""

    target_db: float
    bitrate_bps: float
    achieved_db: float
    compressed_bytes: int

    @property
    def reached(self) -> bool:
        """Whether the encoder actually hit this rung's quality."""
        return self.achieved_db >= self.target_db - 0.1


def build_ladder(
    video: Video,
    backend: "str | Transcoder" = "x264:medium",
    quality_targets: Sequence[float] = DEFAULT_QUALITY_TARGETS,
    initial_bitrate: Optional[float] = None,
    iterations: int = 6,
) -> List[LadderRung]:
    """Derive a per-title ladder: minimal bitrate per quality rung.

    Args:
        video: The title (its universal-format mezzanine).
        backend: Transcoder used for the delivery encodes.
        quality_targets: Ascending PSNR rungs in dB.
        initial_bitrate: Bisection starting point; defaults to 1 bit/px/s.
        iterations: Bisection budget per rung.

    Returns:
        One :class:`LadderRung` per target, ascending.  Rungs the encoder
        cannot reach are still returned (with ``reached`` False) so the
        packager can drop them explicitly.
    """
    targets = list(quality_targets)
    if not targets:
        raise ValueError("need at least one quality target")
    if any(b <= a for a, b in zip(targets, targets[1:])):
        raise ValueError("quality targets must be strictly ascending")
    transcoder = get_transcoder(backend) if isinstance(backend, str) else backend
    start = initial_bitrate or float(video.frame_pixels) * 1.0
    rungs: List[LadderRung] = []
    for target in targets:
        result = bisect_to_quality(
            transcoder,
            video,
            target_db=target,
            initial_bitrate=start,
            two_pass=False,
            iterations=iterations,
        )
        rungs.append(
            LadderRung(
                target_db=target,
                bitrate_bps=result.bitrate,
                achieved_db=result.quality_db,
                compressed_bytes=result.compressed_bytes,
            )
        )
        # The next (higher) rung cannot need less than this one found.
        start = max(result.bitrate, start)
    return rungs
