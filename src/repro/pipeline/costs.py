"""The three costs of a video sharing service (Section 2.5).

* **storage** -- proportional to the stored corpus, all replicas included;
* **network** -- dominated by egress of watched bytes;
* **compute** -- paid per transcode.

Prices default to public-cloud list-price magnitudes; they only need to be
*relatively* sane, since the interesting outputs are how the balance
shifts when transcoding choices change (e.g. a hardware encoder cutting
compute while inflating storage and egress, Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.exec.cache import CacheStats

__all__ = ["CostModel", "CostReport"]


@dataclass(frozen=True)
class CostModel:
    """Unit prices.

    Attributes:
        storage_per_gb_month: $ per GB-month stored (incl. replication).
        egress_per_gb: $ per GB served to viewers.
        compute_per_hour: $ per transcoder-core-hour.
    """

    storage_per_gb_month: float = 0.026
    egress_per_gb: float = 0.05
    compute_per_hour: float = 0.04

    def __post_init__(self) -> None:
        for name in ("storage_per_gb_month", "egress_per_gb", "compute_per_hour"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def compute_dollars(self, seconds: float) -> float:
        """Price of ``seconds`` of transcoder compute.

        The deadline scheduler uses this to break ties between
        equal-quality operating points ("Where to Encode": pick the
        cheapest machine that meets the deadline).
        """
        if seconds < 0:
            raise ValueError(f"compute seconds must be >= 0, got {seconds}")
        return seconds / 3600.0 * self.compute_per_hour


@dataclass
class CostReport:
    """Accumulated service costs, in dollars.

    ``cache`` carries the transcode-cache statistics of the run that
    produced this report, when a persistent cache was in play -- cache
    hits are compute the service did *not* pay for, surfaced via
    :attr:`compute_hours_saved`.
    """

    storage_gb_months: float = 0.0
    egress_gb: float = 0.0
    compute_hours: float = 0.0
    model: CostModel = field(default_factory=CostModel)
    cache: Optional["CacheStats"] = None

    def add_storage(self, size_bytes: float, months: float = 1.0) -> None:
        if size_bytes < 0 or months < 0:
            raise ValueError("storage additions must be non-negative")
        self.storage_gb_months += size_bytes / 1e9 * months

    def add_egress(self, size_bytes: float) -> None:
        if size_bytes < 0:
            raise ValueError("egress must be non-negative")
        self.egress_gb += size_bytes / 1e9

    def add_compute(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("compute must be non-negative")
        self.compute_hours += seconds / 3600.0

    @property
    def storage_cost(self) -> float:
        return self.storage_gb_months * self.model.storage_per_gb_month

    @property
    def network_cost(self) -> float:
        return self.egress_gb * self.model.egress_per_gb

    @property
    def compute_cost(self) -> float:
        return self.compute_hours * self.model.compute_per_hour

    @property
    def total_cost(self) -> float:
        return self.storage_cost + self.network_cost + self.compute_cost

    @property
    def compute_hours_saved(self) -> float:
        """Compute-hours the transcode cache avoided (0 without a cache)."""
        if self.cache is None:
            return 0.0
        return self.cache.seconds_saved / 3600.0

    def breakdown(self) -> dict:
        """Cost per category, in dollars."""
        return {
            "storage": self.storage_cost,
            "network": self.network_cost,
            "compute": self.compute_cost,
            "total": self.total_cost,
        }
