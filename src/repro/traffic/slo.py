"""SLO accounting: every request's lifecycle, rendered byte-stably.

A traffic experiment is only as good as its ledger.  Every request that
enters the simulator ends in exactly one of five states — completed,
shed at admission, timed out in queue, backpressure-exhausted, or
dead-lettered by the farm — and this module folds those lifecycles into
per-scenario latency distributions (p50/p95/p99 queue wait and
end-to-end), SLO violation counts, the autoscaler's event log, and fleet
utilization.

Like :class:`~repro.pipeline.farm.RobustnessReport`, the text rendering
uses fixed precision and fixed ordering, so two runs under the same seed
produce byte-identical reports; ``to_json()`` is the machine-stable twin
(sorted keys, fixed float rounding) whose SHA-256 ``digest()`` is what
CI pins.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.traffic.autoscaler import ScaleEvent

__all__ = [
    "FleetStats",
    "LatencySummary",
    "PredictionStats",
    "SLOReport",
    "ScenarioStats",
    "chaos_bench_dict",
    "percentile",
    "sched_bench_dict",
]

#: Fixed scenario ordering for all renderings.
SCENARIO_ORDER = ("upload", "live", "vod")

#: Decimal places used when serializing floats to JSON.  Rounding makes
#: the JSON immune to representation noise without losing anything a
#: latency SLO cares about (1e-9 s).
_JSON_DECIMALS = 9


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    Returns 0.0 for an empty sample set — reports render "no data" as
    zeros rather than NaN so their text stays byte-stable.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """A latency distribution, reduced to the quantiles SLOs quote."""

    count: int = 0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    mean_s: float = 0.0
    max_s: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            return cls()
        return cls(
            count=len(samples),
            p50_s=percentile(samples, 50.0),
            p95_s=percentile(samples, 95.0),
            p99_s=percentile(samples, 99.0),
            mean_s=sum(samples) / len(samples),
            max_s=max(samples),
        )

    def to_line(self) -> str:
        return (
            f"p50={self.p50_s:.6f}s p95={self.p95_s:.6f}s "
            f"p99={self.p99_s:.6f}s max={self.max_s:.6f}s"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "p50_s": round(self.p50_s, _JSON_DECIMALS),
            "p95_s": round(self.p95_s, _JSON_DECIMALS),
            "p99_s": round(self.p99_s, _JSON_DECIMALS),
            "mean_s": round(self.mean_s, _JSON_DECIMALS),
            "max_s": round(self.max_s, _JSON_DECIMALS),
        }


@dataclass(frozen=True)
class PredictionStats:
    """How well service-time estimates matched what jobs actually cost.

    Both simulator arms produce these: the EWMA arm grades its
    estimator, the predictor arm grades the committed coefficients, so
    ``BENCH_sched.json`` can compare them on equal footing.

    Attributes:
        count: Completed jobs with a recorded (estimate, actual) pair.
        mape: Mean absolute percentage error of the estimates.
        p99_overrun_s: p99 of ``actual - estimate`` where positive --
            how badly under-estimates blow a deadline plan.
        p99_underrun_s: p99 of ``estimate - actual`` where positive --
            capacity an over-estimate would needlessly shed.
    """

    count: int = 0
    mape: float = 0.0
    p99_overrun_s: float = 0.0
    p99_underrun_s: float = 0.0

    @classmethod
    def from_samples(
        cls, samples: Sequence[Sequence[float]]
    ) -> "PredictionStats":
        """Reduce ``(estimate_s, actual_s)`` pairs to the summary."""
        if not samples:
            return cls()
        errors = [
            abs(predicted - actual) / actual
            for predicted, actual in samples
            if actual > 0.0
        ]
        overruns = [max(actual - predicted, 0.0) for predicted, actual in samples]
        underruns = [max(predicted - actual, 0.0) for predicted, actual in samples]
        return cls(
            count=len(samples),
            mape=sum(errors) / len(errors) if errors else 0.0,
            p99_overrun_s=percentile(overruns, 99.0),
            p99_underrun_s=percentile(underruns, 99.0),
        )

    def to_line(self) -> str:
        return (
            f"n={self.count} mape={self.mape:.6f} "
            f"p99_overrun={self.p99_overrun_s:.6f}s "
            f"p99_underrun={self.p99_underrun_s:.6f}s"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mape": round(self.mape, _JSON_DECIMALS),
            "p99_overrun_s": round(self.p99_overrun_s, _JSON_DECIMALS),
            "p99_underrun_s": round(self.p99_underrun_s, _JSON_DECIMALS),
        }


@dataclass(frozen=True)
class FleetStats:
    """What chaos did to the fleet, and what recovery bought back.

    Produced by the simulator from
    :class:`repro.traffic.fleet.FleetState`; all-zero (``availability``
    1.0) when no fault plan is configured.  ``reclaimed_busy`` is an
    audit counter for the graceful scale-down invariant — a replica
    with an in-flight job must never be reclaimed — and any nonzero
    value is a bug, asserted on in CI.
    """

    workers_spawned: int = 0
    workers_lost: int = 0
    crashes: int = 0
    preemptions: int = 0
    outage_kills: int = 0
    outages: int = 0
    interruptions: int = 0
    redeliveries: int = 0
    redelivery_dead_letters: int = 0
    hedges_launched: int = 0
    hedge_wins: int = 0
    hedge_cancelled: int = 0
    reclaimed_busy: int = 0
    availability: float = 1.0
    time_to_recover: LatencySummary = field(default_factory=LatencySummary)
    wasted_compute_s: float = 0.0
    wasted_cost_usd: float = 0.0

    def to_lines(self) -> List[str]:
        return [
            f"    workers:         spawned={self.workers_spawned} "
            f"lost={self.workers_lost} (crash={self.crashes} "
            f"preempt={self.preemptions} outage={self.outage_kills}) "
            f"outages={self.outages}",
            f"    recovery:        interruptions={self.interruptions} "
            f"redeliveries={self.redeliveries} "
            f"redelivery-dead-letters={self.redelivery_dead_letters}",
            f"    hedging:         launched={self.hedges_launched} "
            f"wins={self.hedge_wins} cancelled={self.hedge_cancelled}",
            f"    availability:    {self.availability:.6f} "
            f"(reclaimed-busy={self.reclaimed_busy})",
            f"    time-to-recover: {self.time_to_recover.to_line()}",
            f"    waste:           compute={self.wasted_compute_s:.6f}s "
            f"cost=${self.wasted_cost_usd:.9f}",
        ]

    def as_dict(self) -> Dict[str, object]:
        return {
            "workers_spawned": self.workers_spawned,
            "workers_lost": self.workers_lost,
            "crashes": self.crashes,
            "preemptions": self.preemptions,
            "outage_kills": self.outage_kills,
            "outages": self.outages,
            "interruptions": self.interruptions,
            "redeliveries": self.redeliveries,
            "redelivery_dead_letters": self.redelivery_dead_letters,
            "hedges_launched": self.hedges_launched,
            "hedge_wins": self.hedge_wins,
            "hedge_cancelled": self.hedge_cancelled,
            "reclaimed_busy": self.reclaimed_busy,
            "availability": round(self.availability, _JSON_DECIMALS),
            "time_to_recover": self.time_to_recover.as_dict(),
            "wasted_compute_s": round(self.wasted_compute_s, _JSON_DECIMALS),
            "wasted_cost_usd": round(self.wasted_cost_usd, _JSON_DECIMALS),
        }


@dataclass
class ScenarioStats:
    """One traffic class's ledger.

    Every arrival is counted once under ``arrived``; retries of the same
    logical request show up in ``backpressure_retries`` instead.  The
    terminal states partition ``arrived``:
    ``completed + shed + timed_out + dead_lettered == arrived`` once the
    run has drained.  The chaos counters (``redelivered``,
    ``hedge_cancelled``, ``preempted_drained``) describe *journeys*, not
    destinations — a redelivered request still terminates in exactly one
    of the four buckets — so the partition holds under chaos unchanged.
    """

    scenario: str
    arrived: int = 0
    admitted: int = 0
    completed: int = 0
    shed: int = 0
    shed_deadline: int = 0
    shed_queue_full: int = 0
    timed_out: int = 0
    dead_lettered: int = 0
    backpressure_retries: int = 0
    slo_violations: int = 0
    deadline_hits: int = 0
    redelivered: int = 0
    hedge_cancelled: int = 0
    preempted_drained: int = 0
    queue_wait: LatencySummary = field(default_factory=LatencySummary)
    e2e: LatencySummary = field(default_factory=LatencySummary)
    prediction: PredictionStats = field(default_factory=PredictionStats)
    scheduled_specs: Dict[str, int] = field(default_factory=dict)

    @property
    def deadline_hit_rate(self) -> float:
        """Arrivals that completed inside their deadline budget.

        Normalized by *arrivals*, not completions: a shed or timed-out
        request is a missed deadline from the client's point of view,
        so admission decisions cannot launder the rate.
        """
        if self.arrived == 0:
            return 0.0
        return self.deadline_hits / self.arrived

    def as_dict(self) -> Dict[str, object]:
        return {
            "arrived": self.arrived,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "shed_deadline": self.shed_deadline,
            "shed_queue_full": self.shed_queue_full,
            "timed_out": self.timed_out,
            "dead_lettered": self.dead_lettered,
            "backpressure_retries": self.backpressure_retries,
            "slo_violations": self.slo_violations,
            "deadline_hits": self.deadline_hits,
            "deadline_hit_rate": round(self.deadline_hit_rate, _JSON_DECIMALS),
            "redelivered": self.redelivered,
            "hedge_cancelled": self.hedge_cancelled,
            "preempted_drained": self.preempted_drained,
            "queue_wait": self.queue_wait.as_dict(),
            "e2e": self.e2e.as_dict(),
            "prediction": self.prediction.as_dict(),
            "scheduled_specs": {
                spec: self.scheduled_specs[spec]
                for spec in sorted(self.scheduled_specs)
            },
        }


@dataclass
class SLOReport:
    """Everything one traffic experiment observed.

    ``to_text()`` renders with fixed precision and fixed scenario order;
    ``to_json()`` is its machine twin.  Two runs under the same seed and
    config produce byte-identical output from both.
    """

    seed: int = 0
    duration_s: float = 0.0
    makespan_s: float = 0.0
    scenarios: Dict[str, ScenarioStats] = field(default_factory=dict)
    scale_events: List[ScaleEvent] = field(default_factory=list)
    min_workers: int = 0
    max_workers: int = 0
    peak_workers: int = 0
    utilization: float = 0.0
    busy_worker_s: float = 0.0
    catalog_size: int = 0
    predictor_enabled: bool = False
    compute_hours: float = 0.0
    total_cost_usd: float = 0.0
    chaos_profile: str = ""
    fleet: Optional[FleetStats] = None

    # -- aggregates -----------------------------------------------------------

    def _total(self, attr: str) -> int:
        return sum(getattr(stats, attr) for stats in self.scenarios.values())

    @property
    def arrived(self) -> int:
        return self._total("arrived")

    @property
    def completed(self) -> int:
        return self._total("completed")

    @property
    def shed(self) -> int:
        return self._total("shed")

    @property
    def timed_out(self) -> int:
        return self._total("timed_out")

    @property
    def dead_lettered(self) -> int:
        return self._total("dead_lettered")

    @property
    def slo_violations(self) -> int:
        return self._total("slo_violations")

    @property
    def offered_rps(self) -> float:
        return self.arrived / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def completed_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def shed_fraction(self) -> float:
        """Requests rejected (at admission or in queue) per arrival."""
        if self.arrived == 0:
            return 0.0
        return (self.shed + self.timed_out) / self.arrived

    @property
    def deadline_hit_rate(self) -> float:
        """All-scenario deadline hits per arrival — the chaos headline.

        Like the per-scenario rate, normalized by arrivals so losing
        requests to crashes or sheds cannot launder the number.
        """
        if self.arrived == 0:
            return 0.0
        return self._total("deadline_hits") / self.arrived

    # -- renderings -----------------------------------------------------------

    def _ordered(self) -> List[ScenarioStats]:
        ordered = [
            self.scenarios[name]
            for name in SCENARIO_ORDER
            if name in self.scenarios
        ]
        for name in sorted(self.scenarios):
            if name not in SCENARIO_ORDER:
                ordered.append(self.scenarios[name])
        return ordered

    def to_text(self) -> str:
        lines = [
            "SLOReport",
            f"  seed:            {self.seed}",
            f"  duration:        {self.duration_s:.6f} s offered, "
            f"makespan {self.makespan_s:.6f} s",
            f"  requests:        {self.arrived} arrived "
            f"({self.offered_rps:.6f} rps), {self.completed} completed "
            f"({self.completed_rps:.6f} rps)",
            f"  rejected:        {self.shed} shed, {self.timed_out} timed out "
            f"in queue, {self.dead_lettered} dead-lettered "
            f"(shed fraction {self.shed_fraction:.6f})",
            f"  slo violations:  {self.slo_violations}",
            f"  workers:         min={self.min_workers} max={self.max_workers} "
            f"peak={self.peak_workers} utilization={self.utilization:.6f} "
            f"busy={self.busy_worker_s:.6f}s",
            f"  catalog:         {self.catalog_size} titles",
            f"  scheduler:       "
            f"{'predictor' if self.predictor_enabled else 'ewma'}",
            f"  cost:            compute={self.compute_hours:.9f}h "
            f"total=${self.total_cost_usd:.9f}",
        ]
        if self.fleet is not None:
            lines.append(
                f"  chaos:           "
                f"profile={self.chaos_profile or 'custom'} "
                f"hit-rate={self.deadline_hit_rate:.6f}"
            )
            lines.append("  fleet:")
            lines.extend(self.fleet.to_lines())
        for stats in self._ordered():
            lines.append(f"  {stats.scenario}:")
            lines.append(
                f"    arrived={stats.arrived} admitted={stats.admitted} "
                f"completed={stats.completed} dead-lettered={stats.dead_lettered}"
            )
            lines.append(
                f"    shed={stats.shed} (deadline={stats.shed_deadline} "
                f"queue-full={stats.shed_queue_full}) "
                f"timed-out={stats.timed_out} "
                f"backpressure-retries={stats.backpressure_retries}"
            )
            lines.append(f"    queue wait:      {stats.queue_wait.to_line()}")
            lines.append(f"    end-to-end:      {stats.e2e.to_line()}")
            lines.append(f"    slo violations:  {stats.slo_violations}")
            lines.append(
                f"    deadline hits:   {stats.deadline_hits} "
                f"(rate {stats.deadline_hit_rate:.6f})"
            )
            lines.append(f"    prediction:      {stats.prediction.to_line()}")
            if self.fleet is not None:
                lines.append(
                    f"    chaos:           redelivered={stats.redelivered} "
                    f"hedge-cancelled={stats.hedge_cancelled} "
                    f"preempted-drained={stats.preempted_drained}"
                )
            if stats.scheduled_specs:
                rendered = " ".join(
                    f"{spec}={stats.scheduled_specs[spec]}"
                    for spec in sorted(stats.scheduled_specs)
                )
                lines.append(f"    scheduled specs: {rendered}")
        lines.append(f"  autoscaler events ({len(self.scale_events)}):")
        for event in self.scale_events:
            lines.append(f"    {event.to_line()}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": 3,
            "seed": self.seed,
            "chaos_profile": self.chaos_profile,
            "deadline_hit_rate": round(self.deadline_hit_rate, _JSON_DECIMALS),
            "fleet": self.fleet.as_dict() if self.fleet is not None else None,
            "predictor_enabled": self.predictor_enabled,
            "compute_hours": round(self.compute_hours, _JSON_DECIMALS),
            "total_cost_usd": round(self.total_cost_usd, _JSON_DECIMALS),
            "duration_s": round(self.duration_s, _JSON_DECIMALS),
            "makespan_s": round(self.makespan_s, _JSON_DECIMALS),
            "arrived": self.arrived,
            "completed": self.completed,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "dead_lettered": self.dead_lettered,
            "slo_violations": self.slo_violations,
            "offered_rps": round(self.offered_rps, _JSON_DECIMALS),
            "completed_rps": round(self.completed_rps, _JSON_DECIMALS),
            "shed_fraction": round(self.shed_fraction, _JSON_DECIMALS),
            "workers": {
                "min": self.min_workers,
                "max": self.max_workers,
                "peak": self.peak_workers,
                "utilization": round(self.utilization, _JSON_DECIMALS),
                "busy_s": round(self.busy_worker_s, _JSON_DECIMALS),
            },
            "catalog_size": self.catalog_size,
            "scenarios": {
                stats.scenario: stats.as_dict() for stats in self._ordered()
            },
            "scale_events": [
                {
                    "at_s": round(event.at_s, _JSON_DECIMALS),
                    "from_workers": event.from_workers,
                    "to_workers": event.to_workers,
                    "reason": event.reason,
                    "queue_depth": event.queue_depth,
                }
                for event in self.scale_events
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def digest(self) -> str:
        """SHA-256 of the JSON rendering — the byte-stability fingerprint."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def bench_dict(self) -> Dict[str, object]:
        """The compact benchmark record CI appends to the perf trajectory.

        Follows the structured ``BenchmarkResult`` idiom (SNIPPETS.md
        Snippet 1): a name, the parameters that produced the number, and
        the metrics worth tracking across PRs.
        """
        live = self.scenarios.get("live")
        return {
            "name": "traffic-slo",
            "version": 3,
            "parameters": {
                "seed": self.seed,
                "duration_s": round(self.duration_s, _JSON_DECIMALS),
                "catalog_size": self.catalog_size,
                "max_workers": self.max_workers,
                "min_workers": self.min_workers,
                "predictor": self.predictor_enabled,
            },
            "metrics": {
                "throughput_rps": round(self.completed_rps, _JSON_DECIMALS),
                "offered_rps": round(self.offered_rps, _JSON_DECIMALS),
                "shed_fraction": round(self.shed_fraction, _JSON_DECIMALS),
                "utilization": round(self.utilization, _JSON_DECIMALS),
                "live_p99_e2e_s": round(
                    live.e2e.p99_s if live else 0.0, _JSON_DECIMALS
                ),
                "live_deadline_hit_rate": round(
                    live.deadline_hit_rate if live else 0.0, _JSON_DECIMALS
                ),
                "live_prediction_mape": round(
                    live.prediction.mape if live else 0.0, _JSON_DECIMALS
                ),
                "slo_violations": self.slo_violations,
                "total_cost_usd": round(self.total_cost_usd, _JSON_DECIMALS),
                "availability": round(
                    self.fleet.availability if self.fleet else 1.0,
                    _JSON_DECIMALS,
                ),
            },
            "digest": self.digest(),
        }


def sched_bench_dict(ewma: SLOReport, predictor: SLOReport) -> Dict[str, object]:
    """The ``BENCH_sched.json`` record: both scheduling arms, one seed.

    CI pins this file byte-for-byte and additionally asserts the deltas:
    the predictor arm must hit at least as many Live deadlines as the
    EWMA arm at equal or lower total cost (the acceptance criterion of
    the deadline-aware-scheduling work).
    """
    if ewma.seed != predictor.seed or ewma.duration_s != predictor.duration_s:
        raise ValueError(
            "sched comparison needs both arms at the same seed and duration"
        )

    def arm(report: SLOReport) -> Dict[str, object]:
        live = report.scenarios.get("live")
        return {
            "live_deadline_hit_rate": round(
                live.deadline_hit_rate if live else 0.0, _JSON_DECIMALS
            ),
            "live_deadline_hits": live.deadline_hits if live else 0,
            "live_arrived": live.arrived if live else 0,
            "live_p99_e2e_s": round(
                live.e2e.p99_s if live else 0.0, _JSON_DECIMALS
            ),
            "live_prediction_mape": round(
                live.prediction.mape if live else 0.0, _JSON_DECIMALS
            ),
            "shed_fraction": round(report.shed_fraction, _JSON_DECIMALS),
            "slo_violations": report.slo_violations,
            "compute_hours": round(report.compute_hours, _JSON_DECIMALS),
            "total_cost_usd": round(report.total_cost_usd, _JSON_DECIMALS),
            "digest": report.digest(),
        }

    ewma_live = ewma.scenarios.get("live")
    pred_live = predictor.scenarios.get("live")
    hit_delta = (pred_live.deadline_hit_rate if pred_live else 0.0) - (
        ewma_live.deadline_hit_rate if ewma_live else 0.0
    )
    return {
        "name": "sched-compare",
        "version": 1,
        "parameters": {
            "seed": ewma.seed,
            "duration_s": round(ewma.duration_s, _JSON_DECIMALS),
            "catalog_size": ewma.catalog_size,
        },
        "arms": {"ewma": arm(ewma), "predictor": arm(predictor)},
        "deltas": {
            "live_hit_rate_improvement": round(hit_delta, _JSON_DECIMALS),
            "cost_delta_usd": round(
                predictor.total_cost_usd - ewma.total_cost_usd, _JSON_DECIMALS
            ),
        },
    }


def chaos_bench_dict(
    profile: str,
    baseline: SLOReport,
    naive: SLOReport,
    recovery: SLOReport,
) -> Dict[str, object]:
    """The ``BENCH_chaos.json`` record: one chaos profile, three arms.

    ``baseline`` is the fault-free run, ``naive`` the same faults with
    no handling (single delivery, no hedge, ignored preemption notices,
    replacement only at the next autoscaler poll), ``recovery`` the full
    policy.  CI pins the file byte-for-byte and asserts the deltas: the
    recovery arm must beat the naive arm on deadline-hit rate *and*
    availability, at a bounded extra compute cost.
    """
    arms = {"baseline": baseline, "naive": naive, "recovery": recovery}
    seeds = {report.seed for report in arms.values()}
    durations = {report.duration_s for report in arms.values()}
    if len(seeds) != 1 or len(durations) != 1:
        raise ValueError(
            "chaos comparison needs all arms at the same seed and duration"
        )

    def arm(report: SLOReport) -> Dict[str, object]:
        fleet = report.fleet or FleetStats()
        return {
            "deadline_hit_rate": round(
                report.deadline_hit_rate, _JSON_DECIMALS
            ),
            "arrived": report.arrived,
            "completed": report.completed,
            "dead_lettered": report.dead_lettered,
            "availability": round(fleet.availability, _JSON_DECIMALS),
            "interruptions": fleet.interruptions,
            "redeliveries": fleet.redeliveries,
            "hedge_wins": fleet.hedge_wins,
            "hedge_cancelled": fleet.hedge_cancelled,
            "workers_lost": fleet.workers_lost,
            "reclaimed_busy": fleet.reclaimed_busy,
            "ttr_p99_s": round(
                fleet.time_to_recover.p99_s, _JSON_DECIMALS
            ),
            "wasted_cost_usd": round(fleet.wasted_cost_usd, _JSON_DECIMALS),
            "total_cost_usd": round(report.total_cost_usd, _JSON_DECIMALS),
            "digest": report.digest(),
        }

    naive_fleet = naive.fleet or FleetStats()
    recovery_fleet = recovery.fleet or FleetStats()
    return {
        "name": "chaos-compare",
        "version": 1,
        "parameters": {
            "profile": profile,
            "seed": baseline.seed,
            "duration_s": round(baseline.duration_s, _JSON_DECIMALS),
            "catalog_size": baseline.catalog_size,
        },
        "arms": {
            "baseline": arm(baseline),
            "naive": arm(naive),
            "recovery": arm(recovery),
        },
        "deltas": {
            "hit_rate_recovery_vs_naive": round(
                recovery.deadline_hit_rate - naive.deadline_hit_rate,
                _JSON_DECIMALS,
            ),
            "availability_recovery_vs_naive": round(
                recovery_fleet.availability - naive_fleet.availability,
                _JSON_DECIMALS,
            ),
            "cost_recovery_vs_naive_usd": round(
                recovery.total_cost_usd - naive.total_cost_usd,
                _JSON_DECIMALS,
            ),
            "hit_rate_chaos_cost": round(
                baseline.deadline_hit_rate - recovery.deadline_hit_rate,
                _JSON_DECIMALS,
            ),
        },
    }
