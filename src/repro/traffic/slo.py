"""SLO accounting: every request's lifecycle, rendered byte-stably.

A traffic experiment is only as good as its ledger.  Every request that
enters the simulator ends in exactly one of five states — completed,
shed at admission, timed out in queue, backpressure-exhausted, or
dead-lettered by the farm — and this module folds those lifecycles into
per-scenario latency distributions (p50/p95/p99 queue wait and
end-to-end), SLO violation counts, the autoscaler's event log, and fleet
utilization.

Like :class:`~repro.pipeline.farm.RobustnessReport`, the text rendering
uses fixed precision and fixed ordering, so two runs under the same seed
produce byte-identical reports; ``to_json()`` is the machine-stable twin
(sorted keys, fixed float rounding) whose SHA-256 ``digest()`` is what
CI pins.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.traffic.autoscaler import ScaleEvent

__all__ = [
    "LatencySummary",
    "SLOReport",
    "ScenarioStats",
    "percentile",
]

#: Fixed scenario ordering for all renderings.
SCENARIO_ORDER = ("upload", "live", "vod")

#: Decimal places used when serializing floats to JSON.  Rounding makes
#: the JSON immune to representation noise without losing anything a
#: latency SLO cares about (1e-9 s).
_JSON_DECIMALS = 9


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    Returns 0.0 for an empty sample set — reports render "no data" as
    zeros rather than NaN so their text stays byte-stable.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """A latency distribution, reduced to the quantiles SLOs quote."""

    count: int = 0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    mean_s: float = 0.0
    max_s: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            return cls()
        return cls(
            count=len(samples),
            p50_s=percentile(samples, 50.0),
            p95_s=percentile(samples, 95.0),
            p99_s=percentile(samples, 99.0),
            mean_s=sum(samples) / len(samples),
            max_s=max(samples),
        )

    def to_line(self) -> str:
        return (
            f"p50={self.p50_s:.6f}s p95={self.p95_s:.6f}s "
            f"p99={self.p99_s:.6f}s max={self.max_s:.6f}s"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "p50_s": round(self.p50_s, _JSON_DECIMALS),
            "p95_s": round(self.p95_s, _JSON_DECIMALS),
            "p99_s": round(self.p99_s, _JSON_DECIMALS),
            "mean_s": round(self.mean_s, _JSON_DECIMALS),
            "max_s": round(self.max_s, _JSON_DECIMALS),
        }


@dataclass
class ScenarioStats:
    """One traffic class's ledger.

    Every arrival is counted once under ``arrived``; retries of the same
    logical request show up in ``backpressure_retries`` instead.  The
    terminal states partition ``arrived``:
    ``completed + shed + timed_out + dead_lettered == arrived`` once the
    run has drained.
    """

    scenario: str
    arrived: int = 0
    admitted: int = 0
    completed: int = 0
    shed: int = 0
    shed_deadline: int = 0
    shed_queue_full: int = 0
    timed_out: int = 0
    dead_lettered: int = 0
    backpressure_retries: int = 0
    slo_violations: int = 0
    queue_wait: LatencySummary = field(default_factory=LatencySummary)
    e2e: LatencySummary = field(default_factory=LatencySummary)

    def as_dict(self) -> Dict[str, object]:
        return {
            "arrived": self.arrived,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "shed_deadline": self.shed_deadline,
            "shed_queue_full": self.shed_queue_full,
            "timed_out": self.timed_out,
            "dead_lettered": self.dead_lettered,
            "backpressure_retries": self.backpressure_retries,
            "slo_violations": self.slo_violations,
            "queue_wait": self.queue_wait.as_dict(),
            "e2e": self.e2e.as_dict(),
        }


@dataclass
class SLOReport:
    """Everything one traffic experiment observed.

    ``to_text()`` renders with fixed precision and fixed scenario order;
    ``to_json()`` is its machine twin.  Two runs under the same seed and
    config produce byte-identical output from both.
    """

    seed: int = 0
    duration_s: float = 0.0
    makespan_s: float = 0.0
    scenarios: Dict[str, ScenarioStats] = field(default_factory=dict)
    scale_events: List[ScaleEvent] = field(default_factory=list)
    min_workers: int = 0
    max_workers: int = 0
    peak_workers: int = 0
    utilization: float = 0.0
    busy_worker_s: float = 0.0
    catalog_size: int = 0

    # -- aggregates -----------------------------------------------------------

    def _total(self, attr: str) -> int:
        return sum(getattr(stats, attr) for stats in self.scenarios.values())

    @property
    def arrived(self) -> int:
        return self._total("arrived")

    @property
    def completed(self) -> int:
        return self._total("completed")

    @property
    def shed(self) -> int:
        return self._total("shed")

    @property
    def timed_out(self) -> int:
        return self._total("timed_out")

    @property
    def dead_lettered(self) -> int:
        return self._total("dead_lettered")

    @property
    def slo_violations(self) -> int:
        return self._total("slo_violations")

    @property
    def offered_rps(self) -> float:
        return self.arrived / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def completed_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def shed_fraction(self) -> float:
        """Requests rejected (at admission or in queue) per arrival."""
        if self.arrived == 0:
            return 0.0
        return (self.shed + self.timed_out) / self.arrived

    # -- renderings -----------------------------------------------------------

    def _ordered(self) -> List[ScenarioStats]:
        ordered = [
            self.scenarios[name]
            for name in SCENARIO_ORDER
            if name in self.scenarios
        ]
        for name in sorted(self.scenarios):
            if name not in SCENARIO_ORDER:
                ordered.append(self.scenarios[name])
        return ordered

    def to_text(self) -> str:
        lines = [
            "SLOReport",
            f"  seed:            {self.seed}",
            f"  duration:        {self.duration_s:.6f} s offered, "
            f"makespan {self.makespan_s:.6f} s",
            f"  requests:        {self.arrived} arrived "
            f"({self.offered_rps:.6f} rps), {self.completed} completed "
            f"({self.completed_rps:.6f} rps)",
            f"  rejected:        {self.shed} shed, {self.timed_out} timed out "
            f"in queue, {self.dead_lettered} dead-lettered "
            f"(shed fraction {self.shed_fraction:.6f})",
            f"  slo violations:  {self.slo_violations}",
            f"  workers:         min={self.min_workers} max={self.max_workers} "
            f"peak={self.peak_workers} utilization={self.utilization:.6f} "
            f"busy={self.busy_worker_s:.6f}s",
            f"  catalog:         {self.catalog_size} titles",
        ]
        for stats in self._ordered():
            lines.append(f"  {stats.scenario}:")
            lines.append(
                f"    arrived={stats.arrived} admitted={stats.admitted} "
                f"completed={stats.completed} dead-lettered={stats.dead_lettered}"
            )
            lines.append(
                f"    shed={stats.shed} (deadline={stats.shed_deadline} "
                f"queue-full={stats.shed_queue_full}) "
                f"timed-out={stats.timed_out} "
                f"backpressure-retries={stats.backpressure_retries}"
            )
            lines.append(f"    queue wait:      {stats.queue_wait.to_line()}")
            lines.append(f"    end-to-end:      {stats.e2e.to_line()}")
            lines.append(f"    slo violations:  {stats.slo_violations}")
        lines.append(f"  autoscaler events ({len(self.scale_events)}):")
        for event in self.scale_events:
            lines.append(f"    {event.to_line()}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "seed": self.seed,
            "duration_s": round(self.duration_s, _JSON_DECIMALS),
            "makespan_s": round(self.makespan_s, _JSON_DECIMALS),
            "arrived": self.arrived,
            "completed": self.completed,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "dead_lettered": self.dead_lettered,
            "slo_violations": self.slo_violations,
            "offered_rps": round(self.offered_rps, _JSON_DECIMALS),
            "completed_rps": round(self.completed_rps, _JSON_DECIMALS),
            "shed_fraction": round(self.shed_fraction, _JSON_DECIMALS),
            "workers": {
                "min": self.min_workers,
                "max": self.max_workers,
                "peak": self.peak_workers,
                "utilization": round(self.utilization, _JSON_DECIMALS),
                "busy_s": round(self.busy_worker_s, _JSON_DECIMALS),
            },
            "catalog_size": self.catalog_size,
            "scenarios": {
                stats.scenario: stats.as_dict() for stats in self._ordered()
            },
            "scale_events": [
                {
                    "at_s": round(event.at_s, _JSON_DECIMALS),
                    "from_workers": event.from_workers,
                    "to_workers": event.to_workers,
                    "reason": event.reason,
                    "queue_depth": event.queue_depth,
                }
                for event in self.scale_events
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def digest(self) -> str:
        """SHA-256 of the JSON rendering — the byte-stability fingerprint."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def bench_dict(self) -> Dict[str, object]:
        """The compact benchmark record CI appends to the perf trajectory.

        Follows the structured ``BenchmarkResult`` idiom (SNIPPETS.md
        Snippet 1): a name, the parameters that produced the number, and
        the metrics worth tracking across PRs.
        """
        live = self.scenarios.get("live")
        return {
            "name": "traffic-slo",
            "version": 1,
            "parameters": {
                "seed": self.seed,
                "duration_s": round(self.duration_s, _JSON_DECIMALS),
                "catalog_size": self.catalog_size,
                "max_workers": self.max_workers,
                "min_workers": self.min_workers,
            },
            "metrics": {
                "throughput_rps": round(self.completed_rps, _JSON_DECIMALS),
                "offered_rps": round(self.offered_rps, _JSON_DECIMALS),
                "shed_fraction": round(self.shed_fraction, _JSON_DECIMALS),
                "utilization": round(self.utilization, _JSON_DECIMALS),
                "live_p99_e2e_s": round(
                    live.e2e.p99_s if live else 0.0, _JSON_DECIMALS
                ),
                "slo_violations": self.slo_violations,
            },
            "digest": self.digest(),
        }
