"""Admission control: decide at the door, not in the queue.

An overloaded farm has exactly three honest answers to a new request,
and each traffic class gets the one its SLO can live with:

* **Admit** — take the job into the bounded queue.
* **Shed** — reject *fast*.  A Live session start that would wait past
  its real-time budget is worthless when it finishes; rejecting it at
  arrival costs nothing and protects the requests already queued.  This
  is load shedding in the classic sense (the approach of the
  transcoding-time-prediction literature in PAPERS.md: know the
  deadline, estimate the wait, refuse what cannot make it).
* **Backpressure** — tell the client to retry later.  Upload ingest has
  no deadline, so a full queue pushes back with a growing retry delay
  instead of dropping the upload; only a client that exhausts its
  retries is finally shed.

The controller is pure decision logic: the simulator owns the queue and
the clock and feeds in the observed state (depth, estimated wait,
deadline slack).  Determinism follows for free — no randomness, no wall
time, just policy applied to numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.core.scenarios import Scenario

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "Decision",
    "ScenarioPolicy",
    "ServiceTimeEstimator",
]

#: Decision verdicts (kept as plain strings so reports render directly).
ADMIT = "admit"
SHED = "shed"
RETRY = "retry"


@dataclass(frozen=True)
class ScenarioPolicy:
    """How one traffic class is admitted.

    Attributes:
        max_depth: Queue depth at which the class stops being admitted.
        shed_on_deadline: Shed when the estimated queue wait exceeds the
            request's deadline slack (Live's fast-reject path).
        retry_on_full: Convert a full queue into client backpressure
            (Upload) instead of an immediate shed.
        max_retries: Backpressure retries before the client gives up.
        retry_base_s: First retry delay.
        retry_multiplier: Geometric growth of successive retry delays.
    """

    max_depth: int = 32
    shed_on_deadline: bool = False
    retry_on_full: bool = False
    max_retries: int = 3
    retry_base_s: float = 5.0
    retry_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not math.isfinite(self.retry_base_s) or self.retry_base_s < 0:
            raise ValueError(
                f"retry_base_s must be finite and >= 0, got {self.retry_base_s}"
            )
        if self.retry_multiplier < 1.0:
            raise ValueError(
                f"retry_multiplier must be >= 1, got {self.retry_multiplier}"
            )

    def retry_delay_s(self, attempt: int) -> float:
        """Backpressure delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        return self.retry_base_s * self.retry_multiplier ** (attempt - 1)


def _default_upload() -> ScenarioPolicy:
    return ScenarioPolicy(max_depth=48, retry_on_full=True, max_retries=3)


def _default_live() -> ScenarioPolicy:
    return ScenarioPolicy(max_depth=8, shed_on_deadline=True)


def _default_vod() -> ScenarioPolicy:
    return ScenarioPolicy(max_depth=32)


@dataclass(frozen=True)
class AdmissionConfig:
    """Per-class admission policies (defaults match PAPER.md's QoS table:
    Live is latency-critical, Upload is throughput-critical, VOD sits
    between)."""

    upload: ScenarioPolicy = field(default_factory=_default_upload)
    live: ScenarioPolicy = field(default_factory=_default_live)
    vod: ScenarioPolicy = field(default_factory=_default_vod)

    def policy_for(self, scenario: Scenario) -> ScenarioPolicy:
        policies: Dict[Scenario, ScenarioPolicy] = {
            Scenario.UPLOAD: self.upload,
            Scenario.LIVE: self.live,
            Scenario.VOD: self.vod,
        }
        policy = policies.get(scenario)
        if policy is None:
            raise ValueError(f"no admission policy for scenario {scenario.value!r}")
        return policy


@dataclass(frozen=True)
class Decision:
    """What the door said, and why.

    Attributes:
        verdict: ``"admit"``, ``"shed"``, or ``"retry"``.
        reason: Stable machine-readable cause (``"deadline"``,
            ``"queue-full"``, ``"retries-exhausted"``) for shed/retry.
        retry_delay_s: Backpressure delay when the verdict is retry.
    """

    verdict: str
    reason: str = ""
    retry_delay_s: float = 0.0

    @property
    def admitted(self) -> bool:
        return self.verdict == ADMIT


class ServiceTimeEstimator:
    """Per-class service-time estimates feeding the wait predictions.

    The estimate that decides a Live fast-shed must never borrow
    evidence from another traffic class: Upload's two-pass encodes run
    several times longer than Live's single-pass ones, so a cross-class
    average would shed Live sessions that were perfectly schedulable
    (or admit doomed ones).  Estimates resolve strictly within the
    class, in order:

    1. **exact** -- this ``(scenario, key)`` has completed before; the
       farm is deterministic, so a repeat costs what it cost last time;
    2. **seed** -- the optional hook (the transcode-time predictor, in
       the simulator's predictor arm), which knows this *specific* job
       before any completion has been observed;
    3. **per-class EWMA** -- the class's own completion history;
    4. **prior** -- ``prior_s`` (default 0.0: deliberately optimistic,
       so an unseeded cold start admits and learns rather than guesses
       requests away).

    Under fleet chaos, callers must feed :meth:`observe` only
    *successful first-attempt* service times: a straggler's 20x run or
    a crashed attempt's partial time would contaminate the EWMA and
    shed admissible work for the rest of the run (the simulator gates
    on exactly this; see ``TestEstimatorCleanliness``).

    Args:
        alpha: EWMA weight of the newest observation.
        prior_s: The documented cold-start prior.
        seed: Optional ``(scenario, key) -> seconds`` hook consulted
            before the EWMA; return ``None`` to decline.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        prior_s: float = 0.0,
        seed: Optional[Callable[[Scenario, Hashable], Optional[float]]] = None,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not math.isfinite(prior_s) or prior_s < 0:
            raise ValueError(f"prior must be finite and >= 0, got {prior_s}")
        self.alpha = alpha
        self.prior_s = prior_s
        self.seed = seed
        self._known: Dict[Tuple[Scenario, Hashable], float] = {}
        self._ewma: Dict[Scenario, float] = {}

    def expected(self, scenario: Scenario, key: Hashable) -> float:
        """Best in-class estimate for one job (see resolution order)."""
        known = self._known.get((scenario, key))
        if known is not None:
            return known
        if self.seed is not None:
            seeded = self.seed(scenario, key)
            if seeded is not None:
                return seeded
        return self._ewma.get(scenario, self.prior_s)

    def observe(self, scenario: Scenario, key: Hashable, service_s: float) -> None:
        """Fold one completed job's service time into the class state."""
        self._known[(scenario, key)] = service_s
        previous = self._ewma.get(scenario)
        if previous is None:
            self._ewma[scenario] = service_s
        else:
            self._ewma[scenario] = (
                self.alpha * service_s + (1.0 - self.alpha) * previous
            )


class AdmissionController:
    """Apply per-class policy to the observed queue state."""

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config

    def decide(
        self,
        scenario: Scenario,
        depth: int,
        expected_wait_s: float,
        deadline_slack_s: float,
        attempt: int = 1,
    ) -> Decision:
        """Admit, shed, or backpressure one arriving request.

        Args:
            scenario: The request's traffic class.
            depth: Current admission-queue depth.
            expected_wait_s: The simulator's estimate of the queue wait
                this request would see.
            deadline_slack_s: Time the request can afford to wait and
                still meet its deadline (budget minus expected service).
            attempt: 1-based arrival attempt (grows with backpressure
                retries).
        """
        if depth < 0:
            raise ValueError(f"queue depth cannot be negative, got {depth}")
        policy = self.config.policy_for(scenario)
        if policy.shed_on_deadline and expected_wait_s > max(deadline_slack_s, 0.0):
            return Decision(verdict=SHED, reason="deadline")
        if depth >= policy.max_depth:
            if policy.retry_on_full and attempt <= policy.max_retries:
                return Decision(
                    verdict=RETRY,
                    reason="queue-full",
                    retry_delay_s=policy.retry_delay_s(attempt),
                )
            reason = "retries-exhausted" if policy.retry_on_full else "queue-full"
            return Decision(verdict=SHED, reason=reason)
        return Decision(verdict=ADMIT)
