"""The traffic simulator: an event loop that makes the farm earn its SLOs.

This is the tentpole of the robustness layer.  :class:`TrafficSimulator`
replays a seeded request schedule (:mod:`repro.traffic.arrivals`) against
a :class:`~repro.pipeline.farm.TranscodeFarm` through a bounded admission
queue (:mod:`repro.traffic.admission`) while a queue-depth autoscaler
(:mod:`repro.traffic.autoscaler`) grows and shrinks the simulated worker
fleet.  Every request lifecycle —

    arrival -> admit / shed / backpressure -> queue wait
            -> transcode through the robustness stack
            -> complete / dead-letter

— lands in an :class:`~repro.traffic.slo.SLOReport`.

With a :class:`~repro.traffic.fleet.FleetFaultPlan` configured, the
replicas themselves become unreliable (:mod:`repro.traffic.fleet`):
workers crash mid-job, straggle, get spot-preempted with notice, or die
together in correlated-outage windows.  The simulator then runs the
recovery machinery — lease-based failure detection (a crashed worker's
job is only redelivered once its lease expires), bounded redelivery
feeding the dead-letter queue, hedged dispatch for stragglers past a
p99-based hedge delay (first completion wins, the loser's compute is
booked as waste), graceful drain on preemption notice, and replacement
of dead replicas with cold-start delay — and accounts it all in the
report's :class:`~repro.traffic.slo.FleetStats`.

Determinism is the design constraint everything else bends around.  The
loop runs on two clocks: the **event clock** only moves forward
(:meth:`SimClock.advance_to`), popping events from an :class:`EventQueue`
in ``(when, sequence)`` order, while the **farm clock** is seeked to each
job's dispatch time exactly as the farm does for its own workers.  All
randomness lives in seeded substreams — the arrival schedule's, and
under chaos each worker's own fault stream — while admission, scaling,
detection, hedging, and dispatch are pure functions of observed state.
Two runs with the same seed and config therefore produce byte-identical
reports — which is what turns "the farm survived the spike" from an
anecdote into a regression test.

Time scaling: the suite's clips are tiny stand-ins, so their modeled
transcode times are milliseconds — no arrival rate a laptop can simulate
would ever queue.  :attr:`TrafficConfig.time_scale` (via
``FarmConfig.time_scale``) multiplies modeled service times back up to
the scale of the resolutions the clips stand in for, so Live's real-time
budget is actually at risk and admission control has something to do.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.scenarios import Scenario
from repro.pipeline.farm import FarmConfig, JobTiming, TranscodeFarm
from repro.pipeline.scheduler import (
    DEFAULT_CANDIDATES,
    DEFAULT_UPLOAD_FACTOR,
    DeadlineScheduler,
    ScheduleDecision,
)
from repro.predict.features import JobFeatures, extract_features
from repro.robust.clock import EventQueue, SimClock
from repro.robust.faults import FaultPlan
from repro.traffic.admission import (
    AdmissionConfig,
    AdmissionController,
    ServiceTimeEstimator,
)
from repro.traffic.arrivals import ArrivalConfig, Request, generate_arrivals
from repro.traffic.autoscaler import AutoscalerConfig, QueueDepthAutoscaler
from repro.traffic.fleet import (
    BUSY,
    COLD,
    DEAD,
    RETIRED,
    FleetFaultPlan,
    FleetState,
    RecoveryPolicy,
    Worker,
    generate_outages,
)
from repro.traffic.slo import (
    FleetStats,
    LatencySummary,
    PredictionStats,
    ScenarioStats,
    SLOReport,
    percentile,
)
from repro.video.synthesis import synthesize
from repro.video.video import Video

__all__ = ["TrafficConfig", "TrafficSimulator", "run_traffic"]

#: Fixed catalog content rotation (explicit tuple, not dict order).
_CONTENT_CYCLE = (
    "slideshow",
    "screencast",
    "animation",
    "natural",
    "gaming",
    "sports",
)

#: EWMA weight for the service-time estimator feeding admission control.
_EWMA_ALPHA = 0.3

# Event kinds, popped from the EventQueue.
_ARRIVAL = "arrival"
_COMPLETE = "complete"
_TICK = "tick"
_DEATH = "death"  # a worker crashes silently mid-job
_DETECT = "detect"  # a silent death's lease expires
_PREEMPT = "preempt"  # spot preemption notice
_PREEMPT_KILL = "preempt-kill"  # the preemption actually lands
_READY = "ready"  # a cold-started worker comes online
_HEDGE = "hedge"  # a job ran past its hedge delay
_OUTAGE = "outage"  # a correlated outage window opens


@dataclass(frozen=True)
class TrafficConfig:
    """Everything one traffic experiment is parameterized by.

    Attributes:
        arrivals: The offered load (rates, shares, diurnal, spikes).
        admission: Per-class admission policies.
        autoscaler: The worker-fleet scaling policy.
        catalog_size: Number of synthesized titles requests draw from.
        time_scale: Service-time multiplier (see module docstring);
            forwarded to :class:`~repro.pipeline.farm.FarmConfig`.
        clip_width: Stand-in clip geometry (kept tiny so the catalog
            synthesizes in milliseconds).
        clip_height: See ``clip_width``.
        clip_frames: Frames per stand-in clip.
        clip_fps: Frame rate; with ``clip_frames`` this sets the clip
            duration and therefore Live's real-time deadline budget.
        use_predictor: Replace the EWMA service-time estimator with the
            transcode-time predictor and schedule each job at the
            highest-quality operating point whose predicted time fits
            its remaining deadline budget (the predictor arm).  Off by
            default: the EWMA arm is the committed baseline.
        scheduler_candidates: Operating points the predictor arm may
            choose among (defaults to the delivery degradation ladder).
        upload_factor: Upload's throughput target as a multiple of
            realtime, used by the scheduler's Upload budget.
        fleet: The fleet fault plan, or ``None`` for ideal workers.
            With no plan, every chaos code path is dormant and the
            simulation replays exactly as it did before the fleet layer
            existed.
        recovery: How failures are handled when ``fleet`` is set
            (:data:`~repro.traffic.fleet.NAIVE_POLICY` turns it all
            off for the naive comparison arm).
        chaos_profile: Label recorded in the report (the CLI sets it to
            the ``--chaos`` profile name).
    """

    arrivals: ArrivalConfig = field(default_factory=ArrivalConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    catalog_size: int = 12
    time_scale: float = 300.0
    clip_width: int = 48
    clip_height: int = 32
    clip_frames: int = 6
    clip_fps: float = 12.0
    use_predictor: bool = False
    scheduler_candidates: Tuple[str, ...] = DEFAULT_CANDIDATES
    upload_factor: float = DEFAULT_UPLOAD_FACTOR
    fleet: Optional[FleetFaultPlan] = None
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    chaos_profile: str = ""

    def __post_init__(self) -> None:
        if self.catalog_size < 1:
            raise ValueError(
                f"catalog needs at least one title, got {self.catalog_size}"
            )
        if not math.isfinite(self.time_scale) or self.time_scale <= 0:
            raise ValueError(
                f"time scale must be positive and finite, got {self.time_scale}"
            )
        if self.clip_frames < 1:
            raise ValueError(f"clips need >= 1 frame, got {self.clip_frames}")
        if not math.isfinite(self.clip_fps) or self.clip_fps <= 0:
            raise ValueError(f"clip fps must be positive, got {self.clip_fps}")


@dataclass
class _Job:
    """One admitted request's journey, across however many deliveries.

    The terminal-state partition hangs off ``done``: every admitted job
    flips it exactly once (completed, dead-lettered, or timed out at a
    stale re-dispatch), no matter how many attempts chaos costs it.
    """

    request: Request
    enqueued_s: float
    budget_s: float
    deliveries: int = 0
    done: bool = False
    queued: bool = True
    pending_detects: int = 0
    attempts: List["_Attempt"] = field(default_factory=list)

    def live_attempts(self) -> List["_Attempt"]:
        return [a for a in self.attempts if not a.resolved]


@dataclass
class _Attempt:
    """One dispatch of a job onto one worker."""

    aid: int
    job: _Job
    wid: int  # -1 when the ideal (no-plan) fleet runs it
    timing: JobTiming
    started_s: float
    delivery: int
    is_hedge: bool = False
    stretched: bool = False
    crashed: bool = False
    drain_protected: bool = False
    resolved: bool = False
    spec: Optional[str] = None
    budget_override: Optional[float] = None
    expected_s: float = 0.0


class TrafficSimulator:
    """Drive a farm with generated traffic and account every request.

    Args:
        config: The experiment parameters.
        seed: Root seed; arrivals, spikes, ranks, catalog content, and
            (under chaos) every worker's fault stream are all derived
            from substreams of it.
        fault_plan: Optional per-call chaos to inject under the traffic
            (the robustness stack runs either way).  Fleet-level chaos
            is configured via :attr:`TrafficConfig.fleet` instead.
    """

    def __init__(
        self,
        config: Optional[TrafficConfig] = None,
        seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.config = config or TrafficConfig()
        self.seed = int(seed)
        self.farm = TranscodeFarm(
            config=FarmConfig(time_scale=self.config.time_scale),
            fault_plan=fault_plan,
            memoize=True,
        )
        self.catalog: List[Video] = [
            self._make_title(rank) for rank in range(1, self.config.catalog_size + 1)
        ]
        self.admission = AdmissionController(self.config.admission)
        self.scaler = QueueDepthAutoscaler(self.config.autoscaler)
        self.fleet = FleetState(self.config.fleet, self.config.recovery)
        self.policy = self.fleet.policy
        self.clock = SimClock()  # The global event clock; only moves forward.
        self.events = EventQueue()
        self.queue: Deque[_Job] = deque()
        self.busy = 0  # in-flight attempts (== busy workers under chaos)
        self.stats: Dict[str, ScenarioStats] = {}
        self._wait_samples: Dict[str, List[float]] = {}
        self._e2e_samples: Dict[str, List[float]] = {}
        self._pred_samples: Dict[str, List[Tuple[float, float]]] = {}
        # Clean first-delivery service times per scenario: the sample
        # pool the p99 hedge delay derives from.
        self._service_samples: Dict[str, List[float]] = {}
        self._attempts: Dict[int, _Attempt] = {}
        self._next_aid = 0
        # Fleet-level counters folded into FleetStats at finalize.
        self._interruptions = 0
        self._redeliveries = 0
        self._redelivery_dead_letters = 0
        self._hedges_launched = 0
        self._hedge_wins = 0
        self._hedge_cancelled = 0
        self._outage_count = 0
        # Service-time estimation for admission's wait predictions: the
        # EWMA arm learns only from completions; the predictor arm seeds
        # cold starts from the committed transcode-time models.
        self.scheduler: Optional[DeadlineScheduler] = None
        if self.config.use_predictor:
            self.scheduler = DeadlineScheduler(
                candidates=self.config.scheduler_candidates,
                cost_model=self.farm.costs.model,
                time_scale=self.config.time_scale,
                upload_factor=self.config.upload_factor,
            )
        self.estimator = ServiceTimeEstimator(
            alpha=_EWMA_ALPHA,
            seed=self._predicted_service_s if self.scheduler is not None else None,
        )
        self._features: Dict[int, JobFeatures] = {}
        # Observed service times per (scenario, title, spec): the farm
        # is deterministic, so these supersede model predictions for
        # repeat jobs (known-trumps-estimated, same as the estimator).
        self._measured: Dict[Tuple[Scenario, int, str], float] = {}
        # Capacity accounting for the utilization number.
        self._accrued_to = 0.0
        self._busy_worker_s = 0.0
        self._capacity_s = 0.0
        self._makespan = 0.0

    # -- setup ----------------------------------------------------------------

    def _make_title(self, rank: int) -> Video:
        content = _CONTENT_CYCLE[(rank - 1) % len(_CONTENT_CYCLE)]
        return synthesize(
            content,
            self.config.clip_width,
            self.config.clip_height,
            self.config.clip_frames,
            self.config.clip_fps,
            seed=self.seed * 1009 + rank,
            name=f"title-{rank:04d}-{content}",
        )

    def _stats_for(self, scenario: Scenario) -> ScenarioStats:
        name = scenario.value
        if name not in self.stats:
            self.stats[name] = ScenarioStats(scenario=name)
            self._wait_samples[name] = []
            self._e2e_samples[name] = []
            self._service_samples[name] = []
        return self.stats[name]

    def _video_for(self, request: Request) -> Video:
        return self.catalog[(request.rank - 1) % len(self.catalog)]

    # -- service-time estimation ----------------------------------------------

    def _expected_service_s(self, request: Request) -> float:
        """Best estimate of this request's service time.

        Delegates to the :class:`ServiceTimeEstimator`: exact once this
        (scenario, rank) has completed before (the farm is
        deterministic, so a repeat costs what it cost last time); then
        the predictor (predictor arm only); then the scenario's own
        EWMA; then the optimistic 0.0 prior, so the first requests of an
        unseeded cold run are admitted rather than guessed away.
        """
        return self.estimator.expected(request.scenario, request.rank)

    def _observe_service(self, request: Request, service_s: float) -> None:
        self.estimator.observe(request.scenario, request.rank, service_s)

    def _features_for(self, request: Request) -> JobFeatures:
        """Probe features of the request's title, extracted once."""
        index = (request.rank - 1) % len(self.catalog)
        features = self._features.get(index)
        if features is None:
            features = extract_features(self.catalog[index])
            self._features[index] = features
        return features

    def _measured_for(self, request: Request) -> Dict[str, float]:
        """Observed service times of this title at each candidate spec."""
        index = (request.rank - 1) % len(self.catalog)
        measured: Dict[str, float] = {}
        for spec in self.scheduler.candidates:
            service_s = self._measured.get((request.scenario, index, spec))
            if service_s is not None:
                measured[spec] = service_s
        return measured

    def _full_budget_decision(self, request: Request) -> ScheduleDecision:
        """The scheduler's choice for this title at its full budget."""
        video = self._video_for(request)
        budget = self.farm.config.deadlines.budget_s(video, request.scenario)
        return self.scheduler.choose(
            self._features_for(request),
            self.farm.job_rate(video, request.scenario),
            self.scheduler.budget_for(video, request.scenario, budget),
            measured_s=self._measured_for(request),
        )

    def _predicted_service_s(
        self, scenario: Scenario, rank: int
    ) -> Optional[float]:
        """Estimator seed hook: the predicted time of the job the
        scheduler would start for this (scenario, rank) at full budget."""
        request = Request(rid=0, arrival_s=0.0, scenario=scenario, rank=rank)
        return self._full_budget_decision(request).predicted_s

    def _expected_wait_s(self, request: Request) -> float:
        """Predicted queue wait if this request were admitted now."""
        depth = len(self.queue)
        service = self._expected_service_s(request)
        workers = max(self.scaler.active, 1)
        wait = depth / workers * service
        if self.scaler.active == 0:
            # A sleeping fleet can't start anything until the next poll.
            wait += self.config.autoscaler.poll_interval_s
        return wait

    def _hedge_delay_s(self, scenario: Scenario) -> Optional[float]:
        """How long a job may run before a duplicate is raced, or None.

        Pure in the run's own history: the nearest-rank p99 of the
        scenario's *clean* first-delivery service times, scaled by the
        policy multiplier.  Until enough samples exist the hedge stays
        disarmed — better no hedge than one calibrated on noise.
        """
        if not self.policy.hedge_enabled:
            return None
        samples = self._service_samples.get(scenario.value, [])
        if len(samples) < self.policy.hedge_min_samples:
            return None
        return percentile(samples, 99.0) * self.policy.hedge_p99_multiplier

    # -- the event loop -------------------------------------------------------

    def run(self) -> SLOReport:
        """Run the experiment to completion and return its report."""
        requests = generate_arrivals(
            self.config.arrivals, self.config.catalog_size, self.seed
        )
        for scenario in (Scenario.UPLOAD, Scenario.LIVE, Scenario.VOD):
            self._stats_for(scenario)
        self.events.schedule(0.0, (_TICK, None))
        for request in requests:
            self._stats_for(request.scenario).arrived += 1
            self.events.schedule(request.arrival_s, (_ARRIVAL, (request, 1)))
        if self.fleet.chaos:
            for window in generate_outages(
                self.config.fleet, self.config.arrivals.duration_s
            ):
                self.events.schedule(window.at_s, (_OUTAGE, window))
        while self.events:
            when, (kind, payload) = self.events.pop()
            self._accrue(when)
            self.clock.advance_to(when)
            now = self.clock.now
            self._makespan = max(self._makespan, now)
            if kind == _ARRIVAL:
                request, attempt = payload
                self._handle_arrival(now, request, attempt)
            elif kind == _COMPLETE:
                self._handle_complete(now, payload)
            elif kind == _TICK:
                self._handle_tick(now)
            elif kind == _DEATH:
                self._handle_death(now, payload)
            elif kind == _DETECT:
                self._handle_detect(now, payload)
            elif kind == _PREEMPT:
                self._handle_preempt(now, payload)
            elif kind == _PREEMPT_KILL:
                self._handle_preempt_kill(now, payload)
            elif kind == _READY:
                self._handle_ready(now, payload)
            elif kind == _HEDGE:
                self._handle_hedge(now, payload)
            elif kind == _OUTAGE:
                self._handle_outage(now, payload)
            else:  # pragma: no cover - the loop schedules only known kinds
                raise RuntimeError(f"unknown event kind {kind!r}")
        return self._finalize()

    def _accrue(self, until: float) -> None:
        """Integrate busy/capacity worker-seconds up to ``until``."""
        if self.fleet.chaos:
            self.fleet.accrue(until, self.scaler.active)
        dt = until - self._accrued_to
        if dt <= 0:
            return
        self._busy_worker_s += self.busy * dt
        # Workers finishing jobs after a scale-down still exist until they
        # drain, so capacity is never less than what is actually busy.
        self._capacity_s += max(self.scaler.active, self.busy) * dt
        self._accrued_to = until

    def _handle_arrival(self, now: float, request: Request, attempt: int) -> None:
        stats = self._stats_for(request.scenario)
        video = self._video_for(request)
        budget = self.farm.config.deadlines.budget_s(video, request.scenario)
        slack = budget - self._expected_service_s(request)
        decision = self.admission.decide(
            request.scenario,
            depth=len(self.queue),
            expected_wait_s=self._expected_wait_s(request),
            deadline_slack_s=slack,
            attempt=attempt,
        )
        if decision.admitted:
            stats.admitted += 1
            self.queue.append(
                _Job(request=request, enqueued_s=now, budget_s=budget)
            )
            self._dispatch(now)
        elif decision.verdict == "retry":
            stats.backpressure_retries += 1
            self.events.schedule(
                now + decision.retry_delay_s, (_ARRIVAL, (request, attempt + 1))
            )
        else:
            stats.shed += 1
            if decision.reason == "deadline":
                stats.shed_deadline += 1
            else:
                stats.shed_queue_full += 1

    # -- dispatch -------------------------------------------------------------

    def _worker_available(self) -> bool:
        if self.fleet.chaos:
            return self.fleet.idle_worker() is not None
        return self.busy < self.scaler.active

    def _dispatch(self, now: float) -> None:
        """Start queued jobs while free workers exist."""
        while self.queue and self._worker_available():
            job = self.queue.popleft()
            job.queued = False
            self._start_delivery(now, job)

    def _start_delivery(self, now: float, job: _Job) -> None:
        """Dispatch the job's next delivery, or time it out as stale."""
        request = job.request
        stats = self._stats_for(request.scenario)
        wait = now - job.enqueued_s
        elapsed = now - request.arrival_s
        delivery = job.deliveries + 1
        self._wait_samples[request.scenario.value].append(wait)
        video = self._video_for(request)
        budget = job.budget_s
        spec: Optional[str] = None
        budget_override: Optional[float] = None
        if self.scheduler is not None:
            decision = self._full_budget_decision(request)
            if request.scenario.realtime:
                if delivery == 1:
                    # Queue wait already spent part of the budget; pick
                    # the best operating point that fits what is *left*,
                    # and hand the farm that remaining budget so its
                    # retry policy respects it too.
                    remaining = max(budget - wait, 0.0)
                    if remaining < budget:
                        decision = self.scheduler.choose(
                            self._features_for(request),
                            self.farm.job_rate(video, request.scenario),
                            remaining,
                            measured_s=self._measured_for(request),
                        )
                    budget_override = remaining
                else:
                    # A redelivery's deadline clock never stopped: the
                    # wait already served and the wasted attempt are
                    # sunk, so re-plan against what is left (falling
                    # back to the fastest rung when nothing fits).
                    decision = self.scheduler.choose_remaining(
                        self._features_for(request),
                        self.farm.job_rate(video, request.scenario),
                        budget,
                        elapsed,
                        measured_s=self._measured_for(request),
                    )
                    budget_override = max(budget - elapsed, 0.0)
            spec = decision.spec
            expected = decision.predicted_s
        else:
            expected = self._expected_service_s(request)
        staleness = wait if delivery == 1 else elapsed
        if request.scenario.realtime and staleness + expected > budget:
            # Too stale to bother: starting it now would only waste a
            # worker on a stream that has already moved on.
            stats.timed_out += 1
            job.done = True
            return
        self._launch(
            now,
            job,
            delivery,
            spec=spec,
            budget_override=budget_override,
            expected=expected,
            is_hedge=False,
        )

    def _launch(
        self,
        now: float,
        job: _Job,
        delivery: int,
        spec: Optional[str],
        budget_override: Optional[float],
        expected: float,
        is_hedge: bool,
    ) -> None:
        """Run one attempt on a worker and schedule its outcome."""
        request = job.request
        video = self._video_for(request)
        worker: Optional[Worker] = None
        wid = -1
        if self.fleet.chaos:
            worker = self.fleet.idle_worker()
            if worker is None:  # pragma: no cover - callers check first
                raise RuntimeError("dispatched with no idle worker")
            wid = worker.wid
        self.busy += 1
        timing = self.farm.execute_job(
            video,
            request.scenario,
            at_s=now,
            job=f"req-{request.rid:06d}",
            spec=spec,
            budget_s=budget_override,
            predicted_s=expected,
        )
        aid = self._next_aid
        self._next_aid += 1
        attempt = _Attempt(
            aid=aid,
            job=job,
            wid=wid,
            timing=timing,
            started_s=now,
            delivery=delivery,
            is_hedge=is_hedge,
            spec=spec,
            budget_override=budget_override,
            expected_s=expected,
        )
        self._attempts[aid] = attempt
        job.attempts.append(attempt)
        job.deliveries += 1
        if worker is not None:
            self.fleet.assign(worker, aid)
            fault = self.fleet.draw_fault(worker, timing.service_s)
        else:
            fault = None
        if fault is not None and fault.kind == "crash" and timing.completed:
            # The worker dies partway through; nothing completes, nobody
            # notices until the lease expires.
            attempt.crashed = True
            self.events.schedule(
                now + fault.crash_after_s, (_DEATH, (wid, aid))
            )
        elif fault is not None and fault.kind == "straggle":
            attempt.stretched = True
            self.events.schedule(
                now + timing.service_s * fault.factor, (_COMPLETE, aid)
            )
        else:
            self.events.schedule(timing.finished_s, (_COMPLETE, aid))
        if self.fleet.chaos and not is_hedge:
            delay = self._hedge_delay_s(request.scenario)
            if delay is not None:
                self.events.schedule(now + delay, (_HEDGE, aid))

    # -- attempt resolution ---------------------------------------------------

    def _release_worker(self, attempt: _Attempt) -> None:
        if not self.fleet.chaos or attempt.wid < 0:
            return
        worker = self.fleet.workers.get(attempt.wid)
        if (
            worker is not None
            and worker.state == BUSY
            and worker.attempt_id == attempt.aid
        ):
            self.fleet.release(worker)

    def _cancel_attempt(self, attempt: _Attempt, now: float) -> None:
        """A racing duplicate lost: free its worker, book the waste."""
        attempt.resolved = True
        self.busy -= 1
        self._hedge_cancelled += 1
        self._stats_for(attempt.job.request.scenario).hedge_cancelled += 1
        self.fleet.book_waste(now - attempt.started_s)
        self._release_worker(attempt)

    def _interrupt(
        self, now: float, aid: int, silent: bool, worker: Worker
    ) -> None:
        """The environment killed the worker under this attempt.

        ``silent`` deaths (crashes, outages, unheeded preemptions) wait
        out the lease before the job is eligible for redelivery;
        anticipated ones (a drained preemption) redeliver immediately.
        """
        attempt = self._attempts[aid]
        if attempt.resolved:  # pragma: no cover - kills resolve first
            return
        attempt.resolved = True
        self.busy -= 1
        self._interruptions += 1
        self.fleet.book_waste(now - attempt.started_s)
        job = attempt.job
        if silent:
            if not job.done:
                job.pending_detects += 1
            self.events.schedule(
                self.policy.detection_s(worker.ready_s, now),
                (_DETECT, (worker.wid, aid if not job.done else None)),
            )
        elif not job.done:
            self._redeliver_or_dead_letter(now, job)

    def _redeliver_or_dead_letter(self, now: float, job: _Job) -> None:
        """Bounded redelivery: re-queue the job or give up on it."""
        stats = self._stats_for(job.request.scenario)
        if job.deliveries < self.policy.max_deliveries:
            stats.redelivered += 1
            self._redeliveries += 1
            job.enqueued_s = now
            job.queued = True
            self.queue.append(job)
            self._dispatch(now)
        else:
            job.done = True
            stats.dead_lettered += 1
            self._redelivery_dead_letters += 1
            self.farm.dead_letter(
                f"req-{job.request.rid:06d}",
                "fleet",
                f"redelivery-exhausted after {job.deliveries} deliveries",
            )

    def _handle_complete(self, now: float, aid: int) -> None:
        attempt = self._attempts[aid]
        if attempt.resolved:
            return  # cancelled loser or interrupted attempt; already booked
        job = attempt.job
        request = job.request
        stats = self._stats_for(request.scenario)
        attempt.resolved = True
        self.busy -= 1
        self._release_worker(attempt)
        timing = attempt.timing
        clean = timing.completed and not attempt.stretched
        first = attempt.delivery == 1 and not attempt.is_hedge
        if clean and first:
            # Only successful first-delivery runs teach the estimator
            # and the hedge-delay pool: a crashed, stretched, or hedged
            # duplicate's time says nothing about a healthy service.
            self._observe_service(request, timing.service_s)
            self._service_samples[request.scenario.value].append(
                timing.service_s
            )
        if timing.spec:
            stats.scheduled_specs[timing.spec] = (
                stats.scheduled_specs.get(timing.spec, 0) + 1
            )
            if clean:
                index = (request.rank - 1) % len(self.catalog)
                self._measured[(request.scenario, index, timing.spec)] = (
                    timing.service_s
                )
        job.done = True
        if timing.completed:
            stats.completed += 1
            experienced = now - attempt.started_s
            self._pred_samples.setdefault(request.scenario.value, []).append(
                (timing.predicted_s, experienced)
            )
            e2e = now - request.arrival_s
            self._e2e_samples[request.scenario.value].append(e2e)
            if e2e > job.budget_s:
                stats.slo_violations += 1
            else:
                stats.deadline_hits += 1
            if attempt.is_hedge:
                self._hedge_wins += 1
            if attempt.drain_protected:
                stats.preempted_drained += 1
        else:
            stats.dead_lettered += 1
        for loser in job.live_attempts():
            self._cancel_attempt(loser, now)
        self._dispatch(now)

    # -- fleet events ---------------------------------------------------------

    def _reconcile(self, now: float) -> None:
        """Move the fleet toward the autoscaler target, never reclaiming
        a busy replica (the scale-down invariant; audited in CI)."""
        if not self.fleet.chaos:
            return
        for worker in self.fleet.reconcile(now, self.scaler.active):
            if worker.state == COLD:
                self.events.schedule(worker.ready_s, (_READY, worker.wid))
            if (
                worker.preempt_at_s is not None
                and worker.preempt_at_s <= self.config.arrivals.duration_s
            ):
                # Fault processes are active during the arrival window;
                # a preemption drawn past it never fires, so the drain
                # phase terminates.
                self.events.schedule(
                    worker.preempt_at_s, (_PREEMPT, worker.wid)
                )

    def _handle_death(self, now: float, payload: Tuple[int, int]) -> None:
        wid, aid = payload
        worker = self.fleet.workers[wid]
        attempt = self._attempts[aid]
        if (
            attempt.resolved
            or worker.state != BUSY
            or worker.attempt_id != aid
        ):
            # The attempt was hedged away or the worker already died of
            # something else; the drawn crash has nothing left to kill.
            return
        self.fleet.kill(worker, now, "crash")
        self._interrupt(now, aid, silent=True, worker=worker)

    def _handle_detect(
        self, now: float, payload: Tuple[int, Optional[int]]
    ) -> None:
        wid, aid = payload
        self.fleet.mark_detected(self.fleet.workers[wid])
        if self.policy.replace_on_detect:
            # Detection is also when the fleet learns the replica is
            # gone: spawn the replacement now instead of waiting for the
            # autoscaler's next poll.
            self._reconcile(now)
        if aid is None:
            return  # an idle replica died; no job to redeliver
        job = self._attempts[aid].job
        job.pending_detects -= 1
        if job.done or job.queued or job.live_attempts():
            return  # someone else (a hedge, usually) already owns it
        self._redeliver_or_dead_letter(now, job)

    def _handle_preempt(self, now: float, wid: int) -> None:
        worker = self.fleet.workers[wid]
        if worker.state in (DEAD, RETIRED):
            return
        if self.policy.drain_on_preempt:
            worker.preempt_notified = True
            if worker.attempt_id is not None:
                self._attempts[worker.attempt_id].drain_protected = True
            # Capacity just shrank by one serving replica; replace it
            # proactively so the cold start overlaps the notice window.
            self._reconcile(now)
        self.events.schedule(
            now + self.config.fleet.preempt_notice_s, (_PREEMPT_KILL, wid)
        )

    def _handle_preempt_kill(self, now: float, wid: int) -> None:
        worker = self.fleet.workers[wid]
        if worker.state in (DEAD, RETIRED):
            return  # drained out (or died of something else) in time
        aid = worker.attempt_id
        anticipated = self.policy.drain_on_preempt
        self.fleet.kill(worker, now, "preempt", anticipated=anticipated)
        if aid is not None:
            self._interrupt(now, aid, silent=not anticipated, worker=worker)
        elif not anticipated:
            # An idle replica vanished without notice being heeded; the
            # control plane only learns at lease expiry.
            self.events.schedule(
                self.policy.detection_s(worker.ready_s, now),
                (_DETECT, (wid, None)),
            )

    def _handle_ready(self, now: float, wid: int) -> None:
        self.fleet.mark_ready(self.fleet.workers[wid])
        self._dispatch(now)

    def _handle_hedge(self, now: float, aid: int) -> None:
        attempt = self._attempts[aid]
        job = attempt.job
        if attempt.resolved or job.done:
            return
        if job.deliveries >= self.policy.max_deliveries:
            return  # a duplicate is a delivery too; respect the bound
        worker = self.fleet.idle_worker()
        if worker is None:
            return  # never queue-jump real work for a hedge
        self._hedges_launched += 1
        self._launch(
            now,
            job,
            job.deliveries + 1,
            spec=attempt.spec,
            budget_override=attempt.budget_override,
            expected=attempt.expected_s,
            is_hedge=True,
        )

    def _handle_outage(self, now: float, window) -> None:
        self._outage_count += 1
        for worker in self.fleet.domain_members(window.domain):
            aid = worker.attempt_id
            self.fleet.kill(worker, now, "outage")
            if aid is not None:
                self._interrupt(now, aid, silent=True, worker=worker)
            else:
                # Idle and cold replicas die too; each is detected by
                # its own lease, because the outage itself is silent.
                # A replica killed mid-boot "dies" at its would-be
                # registration time — its absence is noticeable only
                # once it should have heartbeat at all.
                died = max(now, worker.ready_s)
                self.events.schedule(
                    self.policy.detection_s(worker.ready_s, died),
                    (_DETECT, (worker.wid, None)),
                )

    def _handle_tick(self, now: float) -> None:
        self.scaler.evaluate(now, depth=len(self.queue), busy=self.busy)
        self._reconcile(now)
        self._dispatch(now)
        next_tick = now + self.config.autoscaler.poll_interval_s
        if (
            now < self.config.arrivals.duration_s
            or self.queue
            or self.busy > 0
            or self.events
            or self.scaler.active > self.config.autoscaler.min_workers
        ):
            self.events.schedule(next_tick, (_TICK, None))

    # -- reporting ------------------------------------------------------------

    def _finalize(self) -> SLOReport:
        for name, stats in self.stats.items():
            stats.queue_wait = LatencySummary.from_samples(self._wait_samples[name])
            stats.e2e = LatencySummary.from_samples(self._e2e_samples[name])
            stats.prediction = PredictionStats.from_samples(
                self._pred_samples.get(name, [])
            )
        utilization = (
            self._busy_worker_s / self._capacity_s if self._capacity_s > 0 else 0.0
        )
        fleet_stats: Optional[FleetStats] = None
        if self.fleet.chaos:
            fleet_stats = FleetStats(
                workers_spawned=self.fleet.spawned,
                workers_lost=self.fleet.lost,
                crashes=self.fleet.crashes,
                preemptions=self.fleet.preemptions,
                outage_kills=self.fleet.outage_kills,
                outages=self._outage_count,
                interruptions=self._interruptions,
                redeliveries=self._redeliveries,
                redelivery_dead_letters=self._redelivery_dead_letters,
                hedges_launched=self._hedges_launched,
                hedge_wins=self._hedge_wins,
                hedge_cancelled=self._hedge_cancelled,
                reclaimed_busy=self.fleet.reclaimed_busy,
                availability=self.fleet.availability,
                time_to_recover=LatencySummary.from_samples(
                    self.fleet.ttr_samples
                ),
                wasted_compute_s=self.fleet.wasted_compute_s,
                wasted_cost_usd=self.farm.costs.model.compute_dollars(
                    self.fleet.wasted_compute_s
                ),
            )
        return SLOReport(
            seed=self.seed,
            duration_s=self.config.arrivals.duration_s,
            makespan_s=self._makespan,
            scenarios=self.stats,
            scale_events=list(self.scaler.events),
            min_workers=self.config.autoscaler.min_workers,
            max_workers=self.config.autoscaler.max_workers,
            peak_workers=self.scaler.peak,
            utilization=utilization,
            busy_worker_s=self._busy_worker_s,
            catalog_size=self.config.catalog_size,
            predictor_enabled=self.scheduler is not None,
            compute_hours=self.farm.costs.compute_hours,
            total_cost_usd=self.farm.costs.total_cost,
            chaos_profile=self.config.chaos_profile,
            fleet=fleet_stats,
        )


def run_traffic(
    config: Optional[TrafficConfig] = None,
    seed: int = 0,
    fault_plan: Optional[FaultPlan] = None,
) -> SLOReport:
    """Convenience wrapper: build a simulator, run it, return the report."""
    return TrafficSimulator(config=config, seed=seed, fault_plan=fault_plan).run()
