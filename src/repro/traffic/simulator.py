"""The traffic simulator: an event loop that makes the farm earn its SLOs.

This is the tentpole of the robustness layer.  :class:`TrafficSimulator`
replays a seeded request schedule (:mod:`repro.traffic.arrivals`) against
a :class:`~repro.pipeline.farm.TranscodeFarm` through a bounded admission
queue (:mod:`repro.traffic.admission`) while a queue-depth autoscaler
(:mod:`repro.traffic.autoscaler`) grows and shrinks the simulated worker
fleet.  Every request lifecycle —

    arrival -> admit / shed / backpressure -> queue wait
            -> transcode through the robustness stack
            -> complete / dead-letter

— lands in an :class:`~repro.traffic.slo.SLOReport`.

Determinism is the design constraint everything else bends around.  The
loop runs on two clocks: the **event clock** only moves forward
(:meth:`SimClock.advance_to`), popping events from an :class:`EventQueue`
in ``(when, sequence)`` order, while the **farm clock** is seeked to each
job's dispatch time exactly as the farm does for its own workers.  All
randomness lives in the arrival schedule's seeded substreams; admission,
scaling, and dispatch are pure functions of observed state.  Two runs
with the same seed and config therefore produce byte-identical reports —
which is what turns "the farm survived the spike" from an anecdote into
a regression test.

Time scaling: the suite's clips are tiny stand-ins, so their modeled
transcode times are milliseconds — no arrival rate a laptop can simulate
would ever queue.  :attr:`TrafficConfig.time_scale` (via
``FarmConfig.time_scale``) multiplies modeled service times back up to
the scale of the resolutions the clips stand in for, so Live's real-time
budget is actually at risk and admission control has something to do.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.scenarios import Scenario
from repro.pipeline.farm import FarmConfig, JobTiming, TranscodeFarm
from repro.pipeline.scheduler import (
    DEFAULT_CANDIDATES,
    DEFAULT_UPLOAD_FACTOR,
    DeadlineScheduler,
    ScheduleDecision,
)
from repro.predict.features import JobFeatures, extract_features
from repro.robust.clock import EventQueue, SimClock
from repro.robust.faults import FaultPlan
from repro.traffic.admission import (
    AdmissionConfig,
    AdmissionController,
    ServiceTimeEstimator,
)
from repro.traffic.arrivals import ArrivalConfig, Request, generate_arrivals
from repro.traffic.autoscaler import AutoscalerConfig, QueueDepthAutoscaler
from repro.traffic.slo import (
    LatencySummary,
    PredictionStats,
    ScenarioStats,
    SLOReport,
)
from repro.video.synthesis import synthesize
from repro.video.video import Video

__all__ = ["TrafficConfig", "TrafficSimulator", "run_traffic"]

#: Fixed catalog content rotation (explicit tuple, not dict order).
_CONTENT_CYCLE = (
    "slideshow",
    "screencast",
    "animation",
    "natural",
    "gaming",
    "sports",
)

#: EWMA weight for the service-time estimator feeding admission control.
_EWMA_ALPHA = 0.3

# Event kinds, popped from the EventQueue.
_ARRIVAL = "arrival"
_COMPLETE = "complete"
_TICK = "tick"


@dataclass(frozen=True)
class TrafficConfig:
    """Everything one traffic experiment is parameterized by.

    Attributes:
        arrivals: The offered load (rates, shares, diurnal, spikes).
        admission: Per-class admission policies.
        autoscaler: The worker-fleet scaling policy.
        catalog_size: Number of synthesized titles requests draw from.
        time_scale: Service-time multiplier (see module docstring);
            forwarded to :class:`~repro.pipeline.farm.FarmConfig`.
        clip_width: Stand-in clip geometry (kept tiny so the catalog
            synthesizes in milliseconds).
        clip_height: See ``clip_width``.
        clip_frames: Frames per stand-in clip.
        clip_fps: Frame rate; with ``clip_frames`` this sets the clip
            duration and therefore Live's real-time deadline budget.
        use_predictor: Replace the EWMA service-time estimator with the
            transcode-time predictor and schedule each job at the
            highest-quality operating point whose predicted time fits
            its remaining deadline budget (the predictor arm).  Off by
            default: the EWMA arm is the committed baseline.
        scheduler_candidates: Operating points the predictor arm may
            choose among (defaults to the delivery degradation ladder).
        upload_factor: Upload's throughput target as a multiple of
            realtime, used by the scheduler's Upload budget.
    """

    arrivals: ArrivalConfig = field(default_factory=ArrivalConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    catalog_size: int = 12
    time_scale: float = 300.0
    clip_width: int = 48
    clip_height: int = 32
    clip_frames: int = 6
    clip_fps: float = 12.0
    use_predictor: bool = False
    scheduler_candidates: Tuple[str, ...] = DEFAULT_CANDIDATES
    upload_factor: float = DEFAULT_UPLOAD_FACTOR

    def __post_init__(self) -> None:
        if self.catalog_size < 1:
            raise ValueError(
                f"catalog needs at least one title, got {self.catalog_size}"
            )
        if not math.isfinite(self.time_scale) or self.time_scale <= 0:
            raise ValueError(
                f"time scale must be positive and finite, got {self.time_scale}"
            )
        if self.clip_frames < 1:
            raise ValueError(f"clips need >= 1 frame, got {self.clip_frames}")
        if not math.isfinite(self.clip_fps) or self.clip_fps <= 0:
            raise ValueError(f"clip fps must be positive, got {self.clip_fps}")


@dataclass(frozen=True)
class _Queued:
    """One admitted request waiting for a worker."""

    request: Request
    enqueued_s: float


class TrafficSimulator:
    """Drive a farm with generated traffic and account every request.

    Args:
        config: The experiment parameters.
        seed: Root seed; arrivals, spikes, ranks, and catalog content are
            all derived from substreams of it.
        fault_plan: Optional chaos to inject under the traffic (the
            robustness stack runs either way).
    """

    def __init__(
        self,
        config: Optional[TrafficConfig] = None,
        seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.config = config or TrafficConfig()
        self.seed = int(seed)
        self.farm = TranscodeFarm(
            config=FarmConfig(time_scale=self.config.time_scale),
            fault_plan=fault_plan,
            memoize=True,
        )
        self.catalog: List[Video] = [
            self._make_title(rank) for rank in range(1, self.config.catalog_size + 1)
        ]
        self.admission = AdmissionController(self.config.admission)
        self.scaler = QueueDepthAutoscaler(self.config.autoscaler)
        self.clock = SimClock()  # The global event clock; only moves forward.
        self.events = EventQueue()
        self.queue: Deque[_Queued] = deque()
        self.busy = 0
        self.stats: Dict[str, ScenarioStats] = {}
        self._wait_samples: Dict[str, List[float]] = {}
        self._e2e_samples: Dict[str, List[float]] = {}
        self._pred_samples: Dict[str, List[Tuple[float, float]]] = {}
        # Service-time estimation for admission's wait predictions: the
        # EWMA arm learns only from completions; the predictor arm seeds
        # cold starts from the committed transcode-time models.
        self.scheduler: Optional[DeadlineScheduler] = None
        if self.config.use_predictor:
            self.scheduler = DeadlineScheduler(
                candidates=self.config.scheduler_candidates,
                cost_model=self.farm.costs.model,
                time_scale=self.config.time_scale,
                upload_factor=self.config.upload_factor,
            )
        self.estimator = ServiceTimeEstimator(
            alpha=_EWMA_ALPHA,
            seed=self._predicted_service_s if self.scheduler is not None else None,
        )
        self._features: Dict[int, JobFeatures] = {}
        # Observed service times per (scenario, title, spec): the farm
        # is deterministic, so these supersede model predictions for
        # repeat jobs (known-trumps-estimated, same as the estimator).
        self._measured: Dict[Tuple[Scenario, int, str], float] = {}
        # Capacity accounting for the utilization number.
        self._accrued_to = 0.0
        self._busy_worker_s = 0.0
        self._capacity_s = 0.0
        self._makespan = 0.0

    # -- setup ----------------------------------------------------------------

    def _make_title(self, rank: int) -> Video:
        content = _CONTENT_CYCLE[(rank - 1) % len(_CONTENT_CYCLE)]
        return synthesize(
            content,
            self.config.clip_width,
            self.config.clip_height,
            self.config.clip_frames,
            self.config.clip_fps,
            seed=self.seed * 1009 + rank,
            name=f"title-{rank:04d}-{content}",
        )

    def _stats_for(self, scenario: Scenario) -> ScenarioStats:
        name = scenario.value
        if name not in self.stats:
            self.stats[name] = ScenarioStats(scenario=name)
            self._wait_samples[name] = []
            self._e2e_samples[name] = []
        return self.stats[name]

    def _video_for(self, request: Request) -> Video:
        return self.catalog[(request.rank - 1) % len(self.catalog)]

    # -- service-time estimation ----------------------------------------------

    def _expected_service_s(self, request: Request) -> float:
        """Best estimate of this request's service time.

        Delegates to the :class:`ServiceTimeEstimator`: exact once this
        (scenario, rank) has completed before (the farm is
        deterministic, so a repeat costs what it cost last time); then
        the predictor (predictor arm only); then the scenario's own
        EWMA; then the optimistic 0.0 prior, so the first requests of an
        unseeded cold run are admitted rather than guessed away.
        """
        return self.estimator.expected(request.scenario, request.rank)

    def _observe_service(self, request: Request, service_s: float) -> None:
        self.estimator.observe(request.scenario, request.rank, service_s)

    def _features_for(self, request: Request) -> JobFeatures:
        """Probe features of the request's title, extracted once."""
        index = (request.rank - 1) % len(self.catalog)
        features = self._features.get(index)
        if features is None:
            features = extract_features(self.catalog[index])
            self._features[index] = features
        return features

    def _measured_for(self, request: Request) -> Dict[str, float]:
        """Observed service times of this title at each candidate spec."""
        index = (request.rank - 1) % len(self.catalog)
        measured: Dict[str, float] = {}
        for spec in self.scheduler.candidates:
            service_s = self._measured.get((request.scenario, index, spec))
            if service_s is not None:
                measured[spec] = service_s
        return measured

    def _full_budget_decision(self, request: Request) -> ScheduleDecision:
        """The scheduler's choice for this title at its full budget."""
        video = self._video_for(request)
        budget = self.farm.config.deadlines.budget_s(video, request.scenario)
        return self.scheduler.choose(
            self._features_for(request),
            self.farm.job_rate(video, request.scenario),
            self.scheduler.budget_for(video, request.scenario, budget),
            measured_s=self._measured_for(request),
        )

    def _predicted_service_s(
        self, scenario: Scenario, rank: int
    ) -> Optional[float]:
        """Estimator seed hook: the predicted time of the job the
        scheduler would start for this (scenario, rank) at full budget."""
        request = Request(rid=0, arrival_s=0.0, scenario=scenario, rank=rank)
        return self._full_budget_decision(request).predicted_s

    def _expected_wait_s(self, request: Request) -> float:
        """Predicted queue wait if this request were admitted now."""
        depth = len(self.queue)
        service = self._expected_service_s(request)
        workers = max(self.scaler.active, 1)
        wait = depth / workers * service
        if self.scaler.active == 0:
            # A sleeping fleet can't start anything until the next poll.
            wait += self.config.autoscaler.poll_interval_s
        return wait

    # -- the event loop -------------------------------------------------------

    def run(self) -> SLOReport:
        """Run the experiment to completion and return its report."""
        requests = generate_arrivals(
            self.config.arrivals, self.config.catalog_size, self.seed
        )
        for scenario in (Scenario.UPLOAD, Scenario.LIVE, Scenario.VOD):
            self._stats_for(scenario)
        self.events.schedule(0.0, (_TICK, None))
        for request in requests:
            self._stats_for(request.scenario).arrived += 1
            self.events.schedule(request.arrival_s, (_ARRIVAL, (request, 1)))
        while self.events:
            when, (kind, payload) = self.events.pop()
            self._accrue(when)
            self.clock.advance_to(when)
            now = self.clock.now
            self._makespan = max(self._makespan, now)
            if kind == _ARRIVAL:
                request, attempt = payload
                self._handle_arrival(now, request, attempt)
            elif kind == _COMPLETE:
                self._handle_complete(now, payload)
            elif kind == _TICK:
                self._handle_tick(now)
            else:  # pragma: no cover - the loop schedules only known kinds
                raise RuntimeError(f"unknown event kind {kind!r}")
        return self._finalize()

    def _accrue(self, until: float) -> None:
        """Integrate busy/capacity worker-seconds up to ``until``."""
        dt = until - self._accrued_to
        if dt <= 0:
            return
        self._busy_worker_s += self.busy * dt
        # Workers finishing jobs after a scale-down still exist until they
        # drain, so capacity is never less than what is actually busy.
        self._capacity_s += max(self.scaler.active, self.busy) * dt
        self._accrued_to = until

    def _handle_arrival(self, now: float, request: Request, attempt: int) -> None:
        stats = self._stats_for(request.scenario)
        video = self._video_for(request)
        budget = self.farm.config.deadlines.budget_s(video, request.scenario)
        slack = budget - self._expected_service_s(request)
        decision = self.admission.decide(
            request.scenario,
            depth=len(self.queue),
            expected_wait_s=self._expected_wait_s(request),
            deadline_slack_s=slack,
            attempt=attempt,
        )
        if decision.admitted:
            stats.admitted += 1
            self.queue.append(_Queued(request=request, enqueued_s=now))
            self._dispatch(now)
        elif decision.verdict == "retry":
            stats.backpressure_retries += 1
            self.events.schedule(
                now + decision.retry_delay_s, (_ARRIVAL, (request, attempt + 1))
            )
        else:
            stats.shed += 1
            if decision.reason == "deadline":
                stats.shed_deadline += 1
            else:
                stats.shed_queue_full += 1

    def _dispatch(self, now: float) -> None:
        """Start queued jobs while free workers exist."""
        while self.queue and self.busy < self.scaler.active:
            item = self.queue.popleft()
            request = item.request
            stats = self._stats_for(request.scenario)
            wait = now - item.enqueued_s
            self._wait_samples[request.scenario.value].append(wait)
            video = self._video_for(request)
            budget = self.farm.config.deadlines.budget_s(video, request.scenario)
            spec: Optional[str] = None
            budget_override: Optional[float] = None
            if self.scheduler is not None:
                decision = self._full_budget_decision(request)
                if request.scenario.realtime:
                    # Queue wait already spent part of the budget; pick
                    # the best operating point that fits what is *left*,
                    # and hand the farm that remaining budget so its
                    # retry policy respects it too.
                    remaining = max(budget - wait, 0.0)
                    if remaining < budget:
                        decision = self.scheduler.choose(
                            self._features_for(request),
                            self.farm.job_rate(video, request.scenario),
                            remaining,
                            measured_s=self._measured_for(request),
                        )
                    budget_override = remaining
                spec = decision.spec
                expected = decision.predicted_s
            else:
                expected = self._expected_service_s(request)
            if request.scenario.realtime and wait + expected > budget:
                # Too stale to bother: starting it now would only waste a
                # worker on a stream that has already moved on.
                stats.timed_out += 1
                continue
            self.busy += 1
            timing = self.farm.execute_job(
                video,
                request.scenario,
                at_s=now,
                job=f"req-{request.rid:06d}",
                spec=spec,
                budget_s=budget_override,
                predicted_s=expected,
            )
            self.events.schedule(
                timing.finished_s, (_COMPLETE, (item, timing, budget))
            )

    def _handle_complete(
        self, now: float, payload: Tuple[_Queued, JobTiming, float]
    ) -> None:
        item, timing, budget = payload
        request = item.request
        stats = self._stats_for(request.scenario)
        self.busy -= 1
        self._observe_service(request, timing.service_s)
        if timing.spec:
            stats.scheduled_specs[timing.spec] = (
                stats.scheduled_specs.get(timing.spec, 0) + 1
            )
            if timing.completed:
                index = (request.rank - 1) % len(self.catalog)
                self._measured[(request.scenario, index, timing.spec)] = (
                    timing.service_s
                )
        if timing.completed:
            stats.completed += 1
            self._pred_samples.setdefault(request.scenario.value, []).append(
                (timing.predicted_s, timing.service_s)
            )
            e2e = now - request.arrival_s
            self._e2e_samples[request.scenario.value].append(e2e)
            if e2e > budget:
                stats.slo_violations += 1
            else:
                stats.deadline_hits += 1
        else:
            stats.dead_lettered += 1
        self._dispatch(now)

    def _handle_tick(self, now: float) -> None:
        self.scaler.evaluate(now, depth=len(self.queue), busy=self.busy)
        self._dispatch(now)
        next_tick = now + self.config.autoscaler.poll_interval_s
        if (
            now < self.config.arrivals.duration_s
            or self.queue
            or self.busy > 0
            or self.events
            or self.scaler.active > self.config.autoscaler.min_workers
        ):
            self.events.schedule(next_tick, (_TICK, None))

    # -- reporting ------------------------------------------------------------

    def _finalize(self) -> SLOReport:
        for name, stats in self.stats.items():
            stats.queue_wait = LatencySummary.from_samples(self._wait_samples[name])
            stats.e2e = LatencySummary.from_samples(self._e2e_samples[name])
            stats.prediction = PredictionStats.from_samples(
                self._pred_samples.get(name, [])
            )
        utilization = (
            self._busy_worker_s / self._capacity_s if self._capacity_s > 0 else 0.0
        )
        return SLOReport(
            seed=self.seed,
            duration_s=self.config.arrivals.duration_s,
            makespan_s=self._makespan,
            scenarios=self.stats,
            scale_events=list(self.scaler.events),
            min_workers=self.config.autoscaler.min_workers,
            max_workers=self.config.autoscaler.max_workers,
            peak_workers=self.scaler.peak,
            utilization=utilization,
            busy_worker_s=self._busy_worker_s,
            catalog_size=self.config.catalog_size,
            predictor_enabled=self.scheduler is not None,
            compute_hours=self.farm.costs.compute_hours,
            total_cost_usd=self.farm.costs.total_cost,
        )


def run_traffic(
    config: Optional[TrafficConfig] = None,
    seed: int = 0,
    fault_plan: Optional[FaultPlan] = None,
) -> SLOReport:
    """Convenience wrapper: build a simulator, run it, return the report."""
    return TrafficSimulator(config=config, seed=seed, fault_plan=fault_plan).run()
