"""Traffic simulation: admission control, backpressure, autoscaling, SLOs.

The vbench paper benchmarks single transcodes; a video service lives or
dies by how a *fleet* of transcoders absorbs a request stream.  This
package closes that gap deterministically: seeded arrival processes
(:mod:`~repro.traffic.arrivals`) drive the fault-tolerant farm through a
bounded admission queue (:mod:`~repro.traffic.admission`) under a
queue-depth autoscaler (:mod:`~repro.traffic.autoscaler`), and every
request lifecycle is accounted in a byte-stable
:class:`~repro.traffic.slo.SLOReport`
(:mod:`~repro.traffic.simulator` owns the event loop).
"""

from repro.traffic.admission import (
    AdmissionConfig,
    AdmissionController,
    Decision,
    ScenarioPolicy,
    ServiceTimeEstimator,
)
from repro.traffic.arrivals import (
    ArrivalConfig,
    Request,
    SpikeWindow,
    generate_arrivals,
    generate_spikes,
    rate_at,
)
from repro.traffic.autoscaler import (
    AutoscalerConfig,
    QueueDepthAutoscaler,
    ScaleEvent,
)
from repro.traffic.simulator import TrafficConfig, TrafficSimulator, run_traffic
from repro.traffic.slo import (
    LatencySummary,
    PredictionStats,
    ScenarioStats,
    SLOReport,
    percentile,
    sched_bench_dict,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ArrivalConfig",
    "AutoscalerConfig",
    "Decision",
    "LatencySummary",
    "PredictionStats",
    "QueueDepthAutoscaler",
    "Request",
    "SLOReport",
    "ScaleEvent",
    "ScenarioPolicy",
    "ScenarioStats",
    "ServiceTimeEstimator",
    "SpikeWindow",
    "TrafficConfig",
    "TrafficSimulator",
    "generate_arrivals",
    "generate_spikes",
    "percentile",
    "rate_at",
    "run_traffic",
    "sched_bench_dict",
]
