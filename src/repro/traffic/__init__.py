"""Traffic simulation: admission control, backpressure, autoscaling, SLOs.

The vbench paper benchmarks single transcodes; a video service lives or
dies by how a *fleet* of transcoders absorbs a request stream.  This
package closes that gap deterministically: seeded arrival processes
(:mod:`~repro.traffic.arrivals`) drive the fault-tolerant farm through a
bounded admission queue (:mod:`~repro.traffic.admission`) under a
queue-depth autoscaler (:mod:`~repro.traffic.autoscaler`), and every
request lifecycle is accounted in a byte-stable
:class:`~repro.traffic.slo.SLOReport`
(:mod:`~repro.traffic.simulator` owns the event loop).

Fleet-level chaos lives in :mod:`~repro.traffic.fleet`: per-worker fault
processes (crashes, stragglers, spot preemption, correlated outages) and
the recovery policy (leases, bounded redelivery, hedged dispatch,
graceful drain) that the simulator runs when a
:class:`~repro.traffic.fleet.FleetFaultPlan` is configured.
"""

from repro.traffic.admission import (
    AdmissionConfig,
    AdmissionController,
    Decision,
    ScenarioPolicy,
    ServiceTimeEstimator,
)
from repro.traffic.arrivals import (
    ArrivalConfig,
    Request,
    SpikeWindow,
    generate_arrivals,
    generate_spikes,
    rate_at,
)
from repro.traffic.autoscaler import (
    AutoscalerConfig,
    QueueDepthAutoscaler,
    ScaleEvent,
)
from repro.traffic.fleet import (
    CHAOS_PROFILES,
    NAIVE_POLICY,
    RECOVERY_POLICY,
    FleetFaultPlan,
    FleetState,
    OutageWindow,
    RecoveryPolicy,
    Worker,
    generate_outages,
    resolve_profile,
)
from repro.traffic.simulator import TrafficConfig, TrafficSimulator, run_traffic
from repro.traffic.slo import (
    FleetStats,
    LatencySummary,
    PredictionStats,
    ScenarioStats,
    SLOReport,
    chaos_bench_dict,
    percentile,
    sched_bench_dict,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ArrivalConfig",
    "AutoscalerConfig",
    "CHAOS_PROFILES",
    "Decision",
    "FleetFaultPlan",
    "FleetState",
    "FleetStats",
    "LatencySummary",
    "NAIVE_POLICY",
    "OutageWindow",
    "PredictionStats",
    "QueueDepthAutoscaler",
    "RECOVERY_POLICY",
    "RecoveryPolicy",
    "Request",
    "SLOReport",
    "ScaleEvent",
    "ScenarioPolicy",
    "ScenarioStats",
    "ServiceTimeEstimator",
    "SpikeWindow",
    "TrafficConfig",
    "TrafficSimulator",
    "Worker",
    "chaos_bench_dict",
    "generate_arrivals",
    "generate_outages",
    "generate_spikes",
    "percentile",
    "rate_at",
    "resolve_profile",
    "run_traffic",
    "sched_bench_dict",
]
