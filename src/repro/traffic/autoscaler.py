"""Queue-depth autoscaling of simulated workers (the KEDA idiom).

The Cloud-Video-Conversion-System architecture in SNIPPETS.md (Snippet 2)
scales stateless transcode workers on RabbitMQ queue depth via KEDA:
replicas follow ``ceil(depth / target_per_replica)``, the deployment can
rest at **zero** replicas and *activate* when the first message lands,
and scale-down waits out a cooldown so a bursty queue doesn't flap the
fleet.  This module reproduces that control loop over simulated time:

* evaluated on a fixed poll interval (KEDA's polling of the queue);
* scale **up** is immediate — backlog is the one signal that never lies;
* scale **down** only after ``scale_down_cooldown_s`` of continuously
  low desire, and scale-to-zero only from an empty, idle system;
* every transition lands in a :class:`ScaleEvent` log, because an
  autoscaler you can't audit is indistinguishable from a flaky one.

Like everything in this layer it is deterministic: decisions are pure
functions of observed ``(now, depth, busy)``.

Under fleet chaos (:mod:`repro.traffic.fleet`) the controller's target
is *reconciled* against replicas that can actually die: the simulator
compares the target to believed capacity (a silently-dead worker still
counts until its lease expires), spawns replacements with a cold-start
delay, and on scale-down retires idle replicas but only ever *drains*
busy ones — a replica with an in-flight job is never reclaimed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["AutoscalerConfig", "QueueDepthAutoscaler", "ScaleEvent"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """The scaling policy.

    Attributes:
        min_workers: Fleet floor; ``0`` enables scale-to-zero.
        max_workers: Fleet ceiling (bounded workers are what make
            overload — and therefore shedding — possible at all).
        target_queue_per_worker: Desired replicas follow
            ``ceil(depth / target_queue_per_worker)`` (KEDA's
            ``queueLength`` trigger).
        activation_depth: Queue depth that wakes a scaled-to-zero fleet
            (KEDA's ``activationQueueLength``).
        poll_interval_s: Simulated seconds between evaluations.
        scale_down_cooldown_s: How long desire must stay below the
            current size before any scale-down happens.
    """

    min_workers: int = 0
    max_workers: int = 8
    target_queue_per_worker: int = 4
    activation_depth: int = 1
    poll_interval_s: float = 5.0
    scale_down_cooldown_s: float = 120.0

    def __post_init__(self) -> None:
        if self.min_workers < 0:
            raise ValueError(f"min_workers must be >= 0, got {self.min_workers}")
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.min_workers > self.max_workers:
            raise ValueError(
                f"min_workers ({self.min_workers}) cannot exceed "
                f"max_workers ({self.max_workers})"
            )
        if self.target_queue_per_worker < 1:
            raise ValueError(
                "target_queue_per_worker must be >= 1, got "
                f"{self.target_queue_per_worker}"
            )
        if self.activation_depth < 1:
            raise ValueError(
                f"activation_depth must be >= 1, got {self.activation_depth}"
            )
        if not math.isfinite(self.poll_interval_s) or self.poll_interval_s <= 0:
            raise ValueError(
                f"poll interval must be positive, got {self.poll_interval_s}"
            )
        if (
            not math.isfinite(self.scale_down_cooldown_s)
            or self.scale_down_cooldown_s < 0
        ):
            raise ValueError(
                "scale-down cooldown must be finite and >= 0, got "
                f"{self.scale_down_cooldown_s}"
            )


@dataclass(frozen=True)
class ScaleEvent:
    """One audited fleet transition.

    Attributes:
        at_s: Simulated time of the transition.
        from_workers: Fleet size before.
        to_workers: Fleet size after.
        reason: ``"scale-from-zero"``, ``"queue-depth"``,
            ``"cooldown-expired"``, or ``"scale-to-zero"``.
        queue_depth: Queue depth observed at the decision.
    """

    at_s: float
    from_workers: int
    to_workers: int
    reason: str
    queue_depth: int

    def to_line(self) -> str:
        return (
            f"t={self.at_s:.6f} {self.from_workers} -> {self.to_workers} "
            f"[{self.reason}] depth={self.queue_depth}"
        )


class QueueDepthAutoscaler:
    """The control loop: poll queue depth, move the fleet toward desire."""

    def __init__(self, config: Optional[AutoscalerConfig] = None) -> None:
        self.config = config or AutoscalerConfig()
        self.active = self.config.min_workers
        self.peak = self.active
        self.events: List[ScaleEvent] = []
        self._low_since: Optional[float] = None

    def desired(self, depth: int) -> int:
        """Fleet size the observed queue depth calls for."""
        if depth < 0:
            raise ValueError(f"queue depth cannot be negative, got {depth}")
        cfg = self.config
        if depth == 0:
            return cfg.min_workers
        if self.active == 0 and depth < cfg.activation_depth:
            # Not enough backlog to wake a sleeping fleet.
            return 0
        want = math.ceil(depth / cfg.target_queue_per_worker)
        return max(cfg.min_workers, min(cfg.max_workers, want))

    def evaluate(self, now: float, depth: int, busy: int) -> Optional[ScaleEvent]:
        """One poll: returns the transition taken, if any.

        ``busy`` guards scale-to-zero — a fleet still finishing jobs is
        not idle even when the queue is empty.
        """
        if not math.isfinite(now):
            raise ValueError(f"evaluation time must be finite, got {now}")
        cfg = self.config
        want = self.desired(depth)
        if want > self.active:
            reason = "scale-from-zero" if self.active == 0 else "queue-depth"
            event = self._transition(now, want, reason, depth)
            self._low_since = None
            return event
        if want < self.active:
            if want == 0 and busy > 0:
                # Don't start the idle countdown while jobs are in flight.
                self._low_since = None
                return None
            if self._low_since is None:
                self._low_since = now
                return None
            if now - self._low_since >= cfg.scale_down_cooldown_s:
                reason = "scale-to-zero" if want == 0 else "cooldown-expired"
                event = self._transition(now, want, reason, depth)
                self._low_since = None
                return event
            return None
        self._low_since = None
        return None

    def _transition(
        self, now: float, to_workers: int, reason: str, depth: int
    ) -> ScaleEvent:
        event = ScaleEvent(
            at_s=now,
            from_workers=self.active,
            to_workers=to_workers,
            reason=reason,
            queue_depth=depth,
        )
        self.events.append(event)
        self.active = to_workers
        self.peak = max(self.peak, to_workers)
        return event

    def __repr__(self) -> str:
        return (
            f"QueueDepthAutoscaler(active={self.active}, "
            f"events={len(self.events)})"
        )
