"""Fleet-level chaos: per-worker fault processes and the recovery policy.

:mod:`repro.robust.faults` injects faults per transcode *call*; real
fleets lose whole *workers*.  This module models the failure shapes a
datacenter-scale transcoding service actually sees (Li et al.,
"Cost-Efficient and Robust On-Demand Video Transcoding Using
Heterogeneous Cloud Services", PAPERS.md):

* **crashes** — a worker dies mid-job; nobody notices until its lease
  expires (heartbeats stop, the lease runs out, only then is the job
  eligible for redelivery);
* **stragglers** — a worker stretches its job by a large factor (noisy
  neighbours, thermal throttling); hedged dispatch races a duplicate
  once the job runs past a p99-based hedge delay;
* **spot preemption** — the provider reclaims a worker after an advance
  notice; a graceful fleet drains (stops assigning, lets the in-flight
  job finish or re-queues it at the kill), a naive one loses the job;
* **correlated outages** — a seeded outage window kills every worker in
  one *fault domain* at once (a rack, an AZ); detection is still
  per-worker lease expiry, because the outage is silent.

Everything is pure in ``(plan, policy, seed)`` on the simulated clock,
in the idiom of :class:`~repro.robust.faults.FaultPlan`: each worker
derives an independent RNG substream from the plan seed and its own id,
so adding a worker never perturbs another worker's draws, and two runs
under the same seed replay the same fleet history byte for byte.  The
event *scheduling* lives in :mod:`repro.traffic.simulator`; this module
owns worker state, fault draws, and the detection arithmetic.

Determinism rules (see DESIGN.md "Fleet chaos & recovery"):

* detection latency is **simulated-clock-only**: a crash at ``t`` is
  detected at ``last_heartbeat(t) + lease_s``, a closed form over the
  worker's spawn time — no polling loop, no wall clock;
* hedge delays derive from the run's own (deterministic) service-time
  samples via nearest-rank p99, so the hedge schedule is a pure
  function of the history that precedes it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "CHAOS_PROFILES",
    "DispatchFault",
    "FleetFaultPlan",
    "FleetState",
    "NAIVE_POLICY",
    "OutageWindow",
    "RECOVERY_POLICY",
    "RecoveryPolicy",
    "Worker",
    "generate_outages",
    "resolve_profile",
]

#: Seed-stream tags (the :mod:`repro.traffic.arrivals` idiom): workers
#: and the outage schedule draw from independent substreams of the plan
#: seed.
_WORKER_TAG = 17
_OUTAGE_TAG = 19

# Worker lifecycle states.
COLD = "cold"  # spawned, still cold-starting
IDLE = "idle"  # ready, no job
BUSY = "busy"  # running an attempt
DEAD = "dead"  # crashed / preempted / caught in an outage
RETIRED = "retired"  # reclaimed by scale-down or drained out


@dataclass(frozen=True)
class FleetFaultPlan:
    """What the environment does to workers, how often, from which seed.

    Attributes:
        seed: Root seed; each worker derives its own stream via
            :meth:`rng_for`, the outage schedule via its own tag.
        crash_rate: Per-dispatch probability the worker dies partway
            through the job (silent; lease-based detection applies).
        crash_fraction: Fraction of the job's service time spent before
            the crash (that compute is wasted).
        straggler_rate: Per-dispatch probability the job is stretched.
        straggler_factor: Service-time multiple of a straggling job.
        preempt_mean_s: Mean worker lifetime until spot preemption
            (exponential, drawn per worker at spawn); ``0`` disables.
        preempt_notice_s: Advance notice between the preemption signal
            and the worker actually dying.
        outage_spacing_s: Slot length of correlated-outage windows; one
            outage lands per slot at a seeded offset; ``0`` disables.
        fault_domains: Number of fault domains workers are spread over
            (``worker id % fault_domains``); an outage kills exactly one
            domain.
        cold_start_s: Delay between spawning a replacement worker and it
            accepting work (an environment property, so the naive and
            recovering fleets pay the same price).
    """

    seed: int = 0
    crash_rate: float = 0.0
    crash_fraction: float = 0.5
    straggler_rate: float = 0.0
    straggler_factor: float = 8.0
    preempt_mean_s: float = 0.0
    preempt_notice_s: float = 30.0
    outage_spacing_s: float = 0.0
    fault_domains: int = 4
    cold_start_s: float = 15.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "straggler_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.crash_rate + self.straggler_rate > 1.0:
            raise ValueError(
                "crash_rate + straggler_rate must be <= 1, got "
                f"{self.crash_rate + self.straggler_rate}"
            )
        if not 0.0 < self.crash_fraction <= 1.0:
            raise ValueError(
                f"crash_fraction must be in (0, 1], got {self.crash_fraction}"
            )
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        for name in (
            "preempt_mean_s",
            "preempt_notice_s",
            "outage_spacing_s",
            "cold_start_s",
        ):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{name} must be finite and >= 0, got {value}")
        if self.fault_domains < 1:
            raise ValueError(
                f"fault_domains must be >= 1, got {self.fault_domains}"
            )

    def rng_for(self, worker_id: int) -> np.random.Generator:
        """A deterministic, worker-independent RNG stream."""
        return np.random.default_rng((self.seed, _WORKER_TAG, worker_id))


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the fleet *handles* what the plan does to it.

    The recovery arm of a chaos experiment runs the full policy; the
    naive arm (:data:`NAIVE_POLICY`) keeps the same environment but
    loses interrupted jobs, never hedges, ignores preemption notices,
    and only replaces dead workers at the autoscaler's next poll.

    Attributes:
        lease_s: Lease duration; a silently-dead worker's job is only
            eligible for redelivery once the lease last renewed by a
            heartbeat has expired.
        heartbeat_s: Heartbeat interval (leases renew on each beat, so
            detection lands at ``last_heartbeat + lease_s``).
        max_deliveries: Total dispatch attempts per job (first delivery
            included); an interruption past the limit dead-letters the
            job with ``redelivery-exhausted``.
        hedge_enabled: Race a duplicate once a job runs past the hedge
            delay; first completion wins, the loser's compute is booked
            as hedge waste.
        hedge_p99_multiplier: Hedge delay as a multiple of the p99 of
            the scenario's observed clean service times.
        hedge_min_samples: Clean service-time samples required before
            hedging arms itself (no p99, no hedge).
        drain_on_preempt: Honor the preemption notice: stop assigning
            work, let the in-flight job finish inside the notice, and
            re-queue it at the kill if it cannot.
        replace_on_detect: Spawn the replacement worker the moment a
            death is detected (lease expiry / preemption notice) rather
            than waiting for the autoscaler's next poll.
    """

    lease_s: float = 30.0
    heartbeat_s: float = 5.0
    max_deliveries: int = 3
    hedge_enabled: bool = True
    hedge_p99_multiplier: float = 1.5
    hedge_min_samples: int = 12
    drain_on_preempt: bool = True
    replace_on_detect: bool = True

    def __post_init__(self) -> None:
        for name in ("lease_s", "heartbeat_s"):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.lease_s < self.heartbeat_s:
            raise ValueError(
                f"lease_s ({self.lease_s}) must cover at least one "
                f"heartbeat interval ({self.heartbeat_s})"
            )
        if self.max_deliveries < 1:
            raise ValueError(
                f"max_deliveries must be >= 1, got {self.max_deliveries}"
            )
        if (
            not math.isfinite(self.hedge_p99_multiplier)
            or self.hedge_p99_multiplier < 1.0
        ):
            raise ValueError(
                "hedge_p99_multiplier must be >= 1, got "
                f"{self.hedge_p99_multiplier}"
            )
        if self.hedge_min_samples < 1:
            raise ValueError(
                f"hedge_min_samples must be >= 1, got {self.hedge_min_samples}"
            )

    def detection_s(self, ready_s: float, died_s: float) -> float:
        """When a silent death at ``died_s`` is detected.

        Heartbeats land at ``ready_s + k * heartbeat_s``; each renews
        the lease for ``lease_s``.  Detection is the expiry of the lease
        renewed by the last heartbeat at or before the death — a closed
        form over simulated time, which is what keeps detection latency
        byte-stable (DESIGN.md).
        """
        if died_s < ready_s:
            raise ValueError(
                f"death at {died_s} precedes worker readiness at {ready_s}"
            )
        beats = math.floor((died_s - ready_s) / self.heartbeat_s)
        return ready_s + beats * self.heartbeat_s + self.lease_s


#: The full recovery stack (the chaos-with-recovery arm).
RECOVERY_POLICY = RecoveryPolicy()

#: Same environment, no handling: interrupted jobs are lost (a single
#: delivery), stragglers run unhedged, preemption notices are ignored,
#: and dead replicas wait for the next autoscaler poll.
NAIVE_POLICY = RecoveryPolicy(
    max_deliveries=1,
    hedge_enabled=False,
    drain_on_preempt=False,
    replace_on_detect=False,
)

#: Named chaos profiles for ``repro traffic --chaos <profile>``.  The
#: plan seed is replaced with the run seed by the CLI, so profiles are
#: shapes, not schedules.
CHAOS_PROFILES: Dict[str, FleetFaultPlan] = {
    "crashes": FleetFaultPlan(crash_rate=0.12, straggler_rate=0.08),
    "spot": FleetFaultPlan(preempt_mean_s=240.0, preempt_notice_s=20.0),
    "outage": FleetFaultPlan(outage_spacing_s=150.0, fault_domains=2),
    "full": FleetFaultPlan(
        crash_rate=0.10,
        straggler_rate=0.08,
        preempt_mean_s=150.0,
        preempt_notice_s=20.0,
        outage_spacing_s=200.0,
        fault_domains=2,
    ),
}


@dataclass(frozen=True)
class OutageWindow:
    """One correlated outage: at ``at_s`` every worker in ``domain`` dies."""

    at_s: float
    domain: int


def generate_outages(
    plan: FleetFaultPlan, duration_s: float
) -> List[OutageWindow]:
    """The seeded outage schedule for one run (pure in ``(plan, duration)``).

    One outage lands in each ``outage_spacing_s``-long slot of the
    arrival window at a seeded offset, hitting a seeded fault domain —
    the :func:`repro.traffic.arrivals.generate_spikes` idiom applied to
    failure instead of load.
    """
    if plan.outage_spacing_s <= 0 or duration_s <= 0:
        return []
    rng = np.random.default_rng((plan.seed, _OUTAGE_TAG))
    outages: List[OutageWindow] = []
    slots = int(duration_s / plan.outage_spacing_s)
    for slot in range(slots):
        offset = float(rng.random()) * plan.outage_spacing_s
        at = slot * plan.outage_spacing_s + offset
        domain = int(rng.integers(0, plan.fault_domains))
        if at >= duration_s:
            continue
        outages.append(OutageWindow(at_s=at, domain=domain))
    return outages


@dataclass(frozen=True)
class DispatchFault:
    """What the worker's fault stream decided for one dispatched job.

    ``kind`` is ``"none"``, ``"crash"`` (dies ``crash_after_s`` service
    seconds in), or ``"straggle"`` (service stretched by ``factor``).
    """

    kind: str = "none"
    crash_after_s: float = 0.0
    factor: float = 1.0


@dataclass
class Worker:
    """One simulated replica.

    Attributes:
        wid: Monotone worker id (never reused).
        domain: Fault domain (``wid % plan.fault_domains``).
        spawned_s: When the replica was started.
        ready_s: When it accepts work (``spawned_s + cold_start_s``).
        state: One of ``cold``/``idle``/``busy``/``dead``/``retired``.
        draining: Scale-down drain — finish the current job, then
            retire; never assigned new work.
        preempt_at_s: Seeded preemption-notice time, or ``None``.
        preempt_notified: The notice has fired (a draining fleet stops
            assigning work to this replica).
        detected: For a dead replica: the fleet has *noticed* (lease
            expiry, or instantly for an anticipated kill).  Until then
            the autoscaler still believes the replica is serving.
        growth_cold: Cold-starting for voluntary growth (a scale-up),
            not as a replacement for a death; such boot time is not an
            outage and does not count against availability.
        attempt_id: The attempt currently running here, if any.
    """

    wid: int
    domain: int
    spawned_s: float
    ready_s: float
    state: str = COLD
    draining: bool = False
    preempt_at_s: Optional[float] = None
    preempt_notified: bool = False
    detected: bool = False
    growth_cold: bool = False
    attempt_id: Optional[int] = None
    rng: Optional[np.random.Generator] = field(default=None, repr=False)


class FleetState:
    """The worker fleet: spawn, assign, drain, kill, and account.

    Owns worker state and the availability/time-to-recover ledgers; the
    simulator owns the event queue and calls in.  With ``plan=None``
    the fleet is a pass-through capacity pool: spawns are instant, no
    faults are drawn, and dispatch admits exactly when a pre-fleet
    simulator would have (``busy < target``), so the no-chaos arms of
    every committed baseline replay unchanged.

    Args:
        plan: The environment's fault processes, or ``None`` for an
            ideal fleet.
        policy: The recovery policy (inert without a plan).
    """

    def __init__(
        self,
        plan: Optional[FleetFaultPlan],
        policy: Optional[RecoveryPolicy] = None,
    ) -> None:
        self.plan = plan
        self.policy = policy or RECOVERY_POLICY
        self.workers: Dict[int, Worker] = {}
        self._next_id = 0
        # Deaths awaiting a replacement: spawn times pop the oldest to
        # form a time-to-recover sample (death -> replacement ready).
        self._pending_deaths: List[float] = []
        self.ttr_samples: List[float] = []
        # Counters surfaced through FleetStats.
        self.spawned = 0
        self.lost = 0
        self.crashes = 0
        self.preemptions = 0
        self.outage_kills = 0
        self.reclaimed_busy = 0  # audit: must stay 0 (scale-down drains)
        self.wasted_compute_s = 0.0
        # Availability ledger: worker-seconds the fleet *intended* to
        # have (integral of the autoscaler target) vs worker-seconds
        # lost to deaths (death -> replacement ready).
        self._accrued_to = 0.0
        self.intended_worker_s = 0.0
        self.unavailable_worker_s = 0.0

    @property
    def chaos(self) -> bool:
        return self.plan is not None

    # -- census ---------------------------------------------------------------

    def _serving(self, worker: Worker) -> bool:
        """Counts toward capacity: alive and not on its way out."""
        return (
            worker.state in (COLD, IDLE, BUSY)
            and not worker.draining
            and not worker.preempt_notified
        )

    def busy_count(self) -> int:
        """Workers running an attempt (drains included — they still work)."""
        return sum(1 for w in self.workers.values() if w.state == BUSY)

    def ready_count(self) -> int:
        """Workers alive and past cold start (idle or busy)."""
        return sum(1 for w in self.workers.values() if w.state in (IDLE, BUSY))

    def capacity_count(self) -> int:
        """What the autoscaler *believes* it has.

        A silently-dead replica still heartbeat-renews in the control
        plane's imagination until its lease expires, so reconciliation
        must not replace it before detection — that head start is
        exactly what the recovering policy's detect-time replacement
        buys back.
        """
        believed = sum(1 for w in self.workers.values() if self._serving(w))
        believed += sum(
            1
            for w in self.workers.values()
            if w.state == DEAD and not w.detected
        )
        return believed

    def mark_detected(self, worker: Worker) -> None:
        worker.detected = True

    def idle_worker(self) -> Optional[Worker]:
        """Lowest-id replica that can accept a job right now."""
        best: Optional[Worker] = None
        for worker in self.workers.values():
            if worker.state == IDLE and self._serving(worker):
                if best is None or worker.wid < best.wid:
                    best = worker
        return best

    # -- lifecycle ------------------------------------------------------------

    def spawn(self, now: float) -> Worker:
        """Start one replica.

        The initial fleet (spawned at ``t == 0``) comes up warm — a
        running service's steady-state replicas are not mid-boot when
        the experiment window opens.  Everything spawned later (scale-up
        or replacement) pays the plan's cold start.
        """
        wid = self._next_id
        self._next_id += 1
        cold = (
            self.plan.cold_start_s
            if self.plan is not None and now > 0
            else 0.0
        )
        domain = wid % self.plan.fault_domains if self.plan is not None else 0
        worker = Worker(
            wid=wid,
            domain=domain,
            spawned_s=now,
            ready_s=now + cold,
            state=COLD if cold > 0 else IDLE,
            rng=self.plan.rng_for(wid) if self.plan is not None else None,
        )
        if self.plan is not None and self.plan.preempt_mean_s > 0:
            worker.preempt_at_s = worker.ready_s + float(
                worker.rng.exponential(self.plan.preempt_mean_s)
            )
        if self._pending_deaths:
            # Replacement for a recorded death: time-to-recover runs
            # from the death to this replica coming online.
            ttr = worker.ready_s - self._pending_deaths.pop(0)
            self.ttr_samples.append(ttr)
        else:
            worker.growth_cold = worker.state == COLD
        self.workers[wid] = worker
        self.spawned += 1
        return worker

    def mark_ready(self, worker: Worker) -> None:
        if worker.state == COLD:
            worker.state = IDLE
            worker.growth_cold = False

    def reconcile(self, now: float, target: int) -> List[Worker]:
        """Move the fleet toward the autoscaler's target size.

        Deficit: un-drain draining replicas first (cheapest capacity),
        then spawn.  Surplus: retire idle replicas, then mark busy ones
        draining — a replica with an in-flight job is **never**
        reclaimed (the scale-down invariant; ``reclaimed_busy`` audits
        it).  Returns newly spawned workers so the simulator can
        schedule their cold-start completions.
        """
        spawned: List[Worker] = []
        have = self.capacity_count()
        if have < target:
            deficit = target - have
            for worker in sorted(self.workers.values(), key=lambda w: w.wid):
                if deficit == 0:
                    break
                if worker.state in (IDLE, BUSY) and worker.draining:
                    worker.draining = False
                    deficit -= 1
            for _ in range(deficit):
                spawned.append(self.spawn(now))
        elif have > target:
            surplus = have - target
            # Idle replicas retire immediately (nothing in flight) ...
            idles = [
                w
                for w in self.workers.values()
                if w.state == IDLE and self._serving(w)
            ]
            for worker in sorted(idles, key=lambda w: -w.wid):
                if surplus == 0:
                    break
                self._retire(worker)
                surplus -= 1
            # ... busy ones only drain: finish the job, then retire.
            busys = [
                w
                for w in self.workers.values()
                if w.state == BUSY and self._serving(w)
            ]
            for worker in sorted(busys, key=lambda w: -w.wid):
                if surplus == 0:
                    break
                worker.draining = True
                surplus -= 1
        return spawned

    def _retire(self, worker: Worker) -> None:
        if worker.attempt_id is not None:
            # The invariant every scale-down must respect: never reclaim
            # a replica with an in-flight job.  Recorded, then refused.
            self.reclaimed_busy += 1
            raise RuntimeError(
                f"worker {worker.wid} reclaimed with attempt "
                f"{worker.attempt_id} in flight"
            )
        worker.state = RETIRED

    def assign(self, worker: Worker, attempt_id: int) -> None:
        if worker.state != IDLE:
            raise RuntimeError(
                f"cannot assign to worker {worker.wid} in state {worker.state}"
            )
        worker.state = BUSY
        worker.attempt_id = attempt_id

    def release(self, worker: Worker) -> None:
        """The worker's attempt resolved; idle it or retire a drainer."""
        worker.attempt_id = None
        if worker.state != BUSY:
            return  # already dead or retired; nothing to release
        if worker.draining or worker.preempt_notified:
            worker.state = RETIRED
        else:
            worker.state = IDLE

    def kill(
        self,
        worker: Worker,
        now: float,
        cause: str,
        anticipated: bool = False,
    ) -> Optional[int]:
        """The environment killed this replica; returns the interrupted
        attempt id, if a job was in flight.

        An ``anticipated`` kill (a drained preemption) had its
        replacement spawned at the notice, so its time-to-recover is the
        part of the cold start the notice window could not hide; silent
        deaths queue for pairing with the next replacement spawn.
        """
        if worker.state in (DEAD, RETIRED):
            return None
        interrupted = worker.attempt_id
        worker.attempt_id = None
        worker.state = DEAD
        self.lost += 1
        if anticipated and self.plan is not None:
            # The drain knew this was coming: the replacement went up at
            # the notice, so recovery time is only the part of its cold
            # start the notice window could not hide.
            worker.detected = True
            self.ttr_samples.append(
                max(self.plan.cold_start_s - self.plan.preempt_notice_s, 0.0)
            )
        else:
            self._pending_deaths.append(now)
        if cause == "crash":
            self.crashes += 1
        elif cause == "preempt":
            self.preemptions += 1
        elif cause == "outage":
            self.outage_kills += 1
        else:  # pragma: no cover - callers pass known causes
            raise ValueError(f"unknown death cause {cause!r}")
        return interrupted

    def domain_members(self, domain: int) -> List[Worker]:
        """Alive workers in one fault domain, id order."""
        return sorted(
            (
                w
                for w in self.workers.values()
                if w.domain == domain and w.state in (COLD, IDLE, BUSY)
            ),
            key=lambda w: w.wid,
        )

    # -- fault draws ----------------------------------------------------------

    def draw_fault(self, worker: Worker, service_s: float) -> DispatchFault:
        """One uniform draw from the worker's stream decides the job's fate."""
        if self.plan is None:
            return DispatchFault()
        draw = float(worker.rng.random())
        if draw < self.plan.crash_rate:
            return DispatchFault(
                kind="crash",
                crash_after_s=service_s * self.plan.crash_fraction,
            )
        if draw < self.plan.crash_rate + self.plan.straggler_rate:
            return DispatchFault(
                kind="straggle", factor=self.plan.straggler_factor
            )
        return DispatchFault()

    # -- accounting -----------------------------------------------------------

    def book_waste(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"waste must be >= 0, got {seconds}")
        self.wasted_compute_s += seconds

    def accrue(self, until: float, target: int) -> None:
        """Integrate intended vs failure-lost worker-seconds to ``until``.

        The deficit at any instant is ``target`` minus the replicas that
        can actually serve (ready, plus voluntary-growth replicas whose
        cold start is in progress — booting for a scale-up is not an
        outage).  Dead replicas — detected or not — and replacements
        still cold-starting *are* deficit: that is the user-visible
        capacity failure recovery exists to shrink.
        """
        dt = until - self._accrued_to
        if dt <= 0:
            return
        self._accrued_to = until
        if target <= 0:
            return
        alive = sum(
            1
            for w in self.workers.values()
            if w.state in (IDLE, BUSY) or (w.state == COLD and w.growth_cold)
        )
        self.intended_worker_s += target * dt
        self.unavailable_worker_s += max(target - alive, 0) * dt

    @property
    def availability(self) -> float:
        """Fraction of intended worker-seconds not lost to failures."""
        if self.intended_worker_s <= 0:
            return 1.0
        return max(
            1.0 - self.unavailable_worker_s / self.intended_worker_s, 0.0
        )


def resolve_profile(name: str, seed: int) -> FleetFaultPlan:
    """The named chaos profile, re-seeded for this run."""
    try:
        profile = CHAOS_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos profile {name!r}; known: {sorted(CHAOS_PROFILES)}"
        ) from None
    return FleetFaultPlan(
        seed=seed,
        crash_rate=profile.crash_rate,
        crash_fraction=profile.crash_fraction,
        straggler_rate=profile.straggler_rate,
        straggler_factor=profile.straggler_factor,
        preempt_mean_s=profile.preempt_mean_s,
        preempt_notice_s=profile.preempt_notice_s,
        outage_spacing_s=profile.outage_spacing_s,
        fault_domains=profile.fault_domains,
        cold_start_s=profile.cold_start_s,
    )
